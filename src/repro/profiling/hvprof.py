"""The hvprof profiler."""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.records import CommRecord
from repro.mpi.collectives.base import CollectiveTiming
from repro.profiling.bins import PAPER_BINS, SizeBin, bin_for
from repro.utils.tables import TextTable
from repro.utils.units import format_bytes, format_time

#: hvprof's per-op record is the unified communication accounting record;
#: the old name survives as an alias for existing imports
OpRecord = CommRecord


@dataclass
class FaultRecord:
    """One injected fault / recovery action (from ``repro.faults``)."""

    kind: str
    time: float
    detail: str = ""


@dataclass
class BinStats:
    count: int = 0
    total_time: float = 0.0
    total_bytes: int = 0

    def add(self, record: OpRecord) -> None:
        self.count += 1
        self.total_time += record.time
        self.total_bytes += record.nbytes


class Hvprof:
    """Observer-based communication profiler.

    Attach with ``comm.add_observer(hvprof.observer)`` (works for both the
    MPI and NCCL communicators — backend-agnostic by construction, like the
    original tool).
    """

    def __init__(self, bins: tuple[SizeBin, ...] = PAPER_BINS):
        self.bins = bins
        self.records: list[OpRecord] = []
        self.fault_records: list[FaultRecord] = []

    # -- collection ------------------------------------------------------------
    def observer(self, timing: CollectiveTiming, backend: str) -> None:
        self.records.append(CommRecord.from_timing(timing, backend))

    def record_fault(self, kind: str, time: float, detail: str = "") -> None:
        """Sink for :class:`~repro.faults.FaultInjector` (pass the profiler
        as its ``hvprof=`` argument); makes injected runs observable in the
        same report stream as the collectives they perturb."""
        self.fault_records.append(FaultRecord(kind=kind, time=time, detail=detail))

    def clear(self) -> None:
        self.records.clear()
        self.fault_records.clear()

    # -- aggregation ------------------------------------------------------------
    def filtered(self, op: str | None = None) -> list[OpRecord]:
        return [r for r in self.records if op is None or r.op == op]

    def by_bin(self, op: str | None = "allreduce") -> dict[SizeBin, BinStats]:
        stats = {b: BinStats() for b in self.bins}
        for record in self.filtered(op):
            b = bin_for(record.nbytes, self.bins)
            if b is not None:
                stats[b].add(record)
        return stats

    def total_time(self, op: str | None = "allreduce") -> float:
        return sum(r.time for r in self.filtered(op))

    def total_bytes(self, op: str | None = "allreduce") -> int:
        return sum(r.nbytes for r in self.filtered(op))

    def op_count(self, op: str | None = "allreduce") -> int:
        return len(self.filtered(op))

    def by_algorithm(self, op: str | None = "allreduce") -> dict[str, BinStats]:
        """Aggregate by the collective algorithm that executed each op."""
        stats: dict[str, BinStats] = {}
        for record in self.filtered(op):
            stats.setdefault(record.algorithm, BinStats()).add(record)
        return stats

    def effective_bandwidth(self, op: str | None = "allreduce") -> float:
        """Aggregate bytes moved per second of collective time."""
        time = self.total_time(op)
        return self.total_bytes(op) / time if time > 0 else 0.0

    # -- reports -------------------------------------------------------------------
    def report(self, op: str = "allreduce", *, title: str | None = None) -> str:
        """Fig. 14-style profile: per-bin counts, time, and bandwidth."""
        table = TextTable(
            ["Message Size", "Count", "Total Time", "Total Bytes", "Eff. BW"],
            title=title or f"hvprof: {op} profile",
        )
        for size_bin, stats in self.by_bin(op).items():
            bw = stats.total_bytes / stats.total_time if stats.total_time else 0.0
            table.add_row(
                size_bin.label,
                stats.count,
                format_time(stats.total_time),
                format_bytes(stats.total_bytes),
                f"{bw / 1e9:.2f} GB/s",
            )
        table.add_row(
            "Total",
            self.op_count(op),
            format_time(self.total_time(op)),
            format_bytes(self.total_bytes(op)),
            f"{self.effective_bandwidth(op) / 1e9:.2f} GB/s",
        )
        return table.render()

    def algorithm_report(self, op: str = "allreduce") -> str:
        """Which collective algorithms executed and their time share."""
        table = TextTable(
            ["Algorithm", "Count", "Total Time", "Share"],
            title=f"hvprof: {op} by algorithm",
        )
        total = self.total_time(op)
        for algorithm, stats in sorted(self.by_algorithm(op).items()):
            share = stats.total_time / total if total else 0.0
            table.add_row(
                algorithm, stats.count, format_time(stats.total_time),
                f"{share:.1%}",
            )
        return table.render()

    def fault_report(self) -> str:
        """Count of injected faults / recovery actions by kind."""
        table = TextTable(
            ["Fault Kind", "Count", "First", "Last"],
            title="hvprof: injected faults",
        )
        by_kind: dict[str, list[FaultRecord]] = {}
        for record in self.fault_records:
            by_kind.setdefault(record.kind, []).append(record)
        for kind, records in sorted(by_kind.items()):
            table.add_row(
                kind,
                len(records),
                format_time(records[0].time),
                format_time(records[-1].time),
            )
        return table.render()

    def to_json(self) -> list[dict]:
        """Machine-readable dump of every record."""
        return [
            {
                "op": r.op,
                "backend": r.backend,
                "algorithm": r.algorithm,
                "nbytes": r.nbytes,
                "time": r.time,
            }
            for r in self.records
        ]
