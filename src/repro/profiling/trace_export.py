"""Chrome ``trace_event`` JSON export for serving and hvprof timelines.

Writes the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_:
a JSON object with a ``traceEvents`` array of complete (``ph: "X"``) and
instant (``ph: "i"``) events, timestamps in microseconds.

Two producers feed it:

* the serving simulator (``repro serve --trace PATH``) emits real
  timeline spans — batches per replica lane, cold starts, failovers,
  autoscaler decisions — with true simulation timestamps;
* :class:`~repro.profiling.Hvprof` records (unified
  :class:`~repro.comm.records.CommRecord`\\ s from any backend's
  communicator) carry durations but no start times (the profiler
  aggregates, it does not trace), so :func:`hvprof_trace_events`
  synthesizes a *concatenated* timeline: ops are laid end-to-end per
  backend lane in record order.  Lane offsets are synthetic; durations
  and ordering are real.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One Chrome trace event (complete span or instant)."""

    name: str
    ts_us: float
    pid: str = "repro"
    tid: str = "main"
    ph: str = "X"
    dur_us: float = 0.0
    cat: str = ""
    args: dict | None = field(default=None, compare=False)

    def to_chrome(self) -> dict:
        event = {
            "name": self.name,
            "ph": self.ph,
            "ts": self.ts_us,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.cat:
            event["cat"] = self.cat
        if self.ph == "X":
            event["dur"] = self.dur_us
        if self.ph == "i":
            event["s"] = "t"  # thread-scoped instant
        if self.args:
            event["args"] = self.args
        return event


def chrome_trace(events: list[TraceEvent]) -> dict:
    """The full ``chrome://tracing`` JSON object (stable event order)."""
    ordered = sorted(
        events, key=lambda e: (e.ts_us, e.pid, e.tid, e.name)
    )
    return {
        "displayTimeUnit": "ms",
        "traceEvents": [e.to_chrome() for e in ordered],
    }


def write_chrome_trace(path: str, events: list[TraceEvent]) -> int:
    """Write the trace JSON; returns the number of events written."""
    payload = chrome_trace(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
        fh.write("\n")
    return len(payload["traceEvents"])


def hvprof_trace_events(hvprof, *, pid: str = "hvprof") -> list[TraceEvent]:
    """Synthesized per-backend timeline of an :class:`Hvprof`'s records.

    Each backend gets its own lane; ops are concatenated in record order
    (hvprof does not retain start times).  Injected-fault records become
    instant events on a ``faults`` lane at their true timestamps.
    """
    events: list[TraceEvent] = []
    offsets: dict[str, float] = {}
    for record in hvprof.records:
        lane = record.backend or "ops"
        start = offsets.get(lane, 0.0)
        events.append(
            TraceEvent(
                name=f"{record.op} [{record.algorithm}]",
                ph="X",
                ts_us=start * 1e6,
                dur_us=record.time * 1e6,
                pid=pid,
                tid=lane,
                cat="collective",
                args={"nbytes": record.nbytes},
            )
        )
        offsets[lane] = start + record.time
    for fault in hvprof.fault_records:
        events.append(
            TraceEvent(
                name=fault.kind,
                ph="i",
                ts_us=fault.time * 1e6,
                pid=pid,
                tid="faults",
                cat="fault",
                args={"detail": fault.detail} if fault.detail else None,
            )
        )
    return events
