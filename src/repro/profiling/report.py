"""Default-vs-optimized comparison reports (Table I's format)."""

from __future__ import annotations

from repro.profiling.hvprof import Hvprof
from repro.utils.tables import TextTable


def improvement_summary(
    default: Hvprof, optimized: Hvprof, op: str = "allreduce"
) -> dict[str, float]:
    """Per-bin and total percentage improvement of optimized over default."""
    out: dict[str, float] = {}
    default_bins = default.by_bin(op)
    optimized_bins = optimized.by_bin(op)
    for size_bin in default.bins:
        d = default_bins[size_bin].total_time
        o = optimized_bins[size_bin].total_time
        out[size_bin.label] = 100.0 * (d - o) / d if d > 0 else 0.0
    d_total = default.total_time(op)
    o_total = optimized.total_time(op)
    out["Total"] = 100.0 * (d_total - o_total) / d_total if d_total > 0 else 0.0
    return out


def comparison_table(
    default: Hvprof,
    optimized: Hvprof,
    op: str = "allreduce",
    *,
    title: str = "Allreduce time performance improvement (Table I)",
) -> str:
    """Render the Table I layout: per-bin default/optimized ms + % gain."""
    table = TextTable(
        ["Message Size (Bytes)", "Default (ms)", "Optimized (ms)", "Improvement (%)"],
        title=title,
    )
    default_bins = default.by_bin(op)
    optimized_bins = optimized.by_bin(op)
    summary = improvement_summary(default, optimized, op)
    for size_bin in default.bins:
        table.add_row(
            size_bin.label,
            default_bins[size_bin].total_time * 1e3,
            optimized_bins[size_bin].total_time * 1e3,
            summary[size_bin.label],
        )
    table.add_row(
        "Total Time",
        default.total_time(op) * 1e3,
        optimized.total_time(op) * 1e3,
        summary["Total"],
    )
    return table.render()
