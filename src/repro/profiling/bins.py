"""Message-size bins (Table I's row structure)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.utils.units import KIB, MIB


@dataclass(frozen=True)
class SizeBin:
    """Half-open byte interval [low, high)."""

    label: str
    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low < 0 or self.high <= self.low:
            raise ConfigError(f"bad bin bounds [{self.low}, {self.high})")

    def contains(self, nbytes: int) -> bool:
        return self.low <= nbytes < self.high


#: the exact bins of the paper's Table I / Fig. 14
PAPER_BINS = (
    SizeBin("1-128 KB", 0, 128 * KIB),
    SizeBin("128 KB - 16 MB", 128 * KIB, 16 * MIB),
    SizeBin("16 MB - 32 MB", 16 * MIB, 32 * MIB),
    SizeBin("32 MB - 64 MB", 32 * MIB, 64 * MIB + 1),
)


def bin_for(nbytes: int, bins: tuple[SizeBin, ...] = PAPER_BINS) -> SizeBin | None:
    """The bin containing ``nbytes``, or None if out of range."""
    for b in bins:
        if b.contains(nbytes):
            return b
    return None
