"""The scaling-study harness behind Figs. 10-13.

For one :class:`~repro.core.scenarios.Scenario` and GPU count it assembles
the whole simulated stack — cluster, CUDA contexts under the visibility
policy, MPI/NCCL backend, Horovod engine — and walks training steps of the
paper's workload (EDSR, batch 4/GPU, 48x48 LR patches):

``step = forward + max(backward_with_stragglers, comm_finish) + update``

where ``comm_finish`` comes from the Horovod engine running the model's
real gradient-readiness schedule through Tensor Fusion and the backend's
collective algorithms.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.core.calibration import (
    COMPUTE_JITTER_SIGMA,
    HOROVOD_TUNED,
    OPTIMIZER_BYTES_PER_PARAM,
    PAGEABLE_BLOCKING_FACTOR,
    TRAIN_BATCH_PER_GPU,
)
from repro.comm.api import broadcast_weights
from repro.compression import CompressionConfig
from repro.core.scenarios import IMAGE_SPEC, Scenario, ScenarioSpec
from repro.errors import ConfigError
from repro.hardware.cluster import build_cluster
from repro.hardware.specs import ClusterSpec, LASSEN
from repro.horovod.coordinator import straggler_factor
from repro.horovod.engine import HorovodEngine, StepTiming
from repro.horovod.env import HorovodConfig
from repro.horovod.fusion import PendingTensor
from repro.horovod.backend import build_backend
from repro.models.costing import ModelCostModel, ThroughputModel, TrainingMemoryModel
from repro.models.registry import get_model_cost, get_scenario_cost
from repro.mpi.process import WorldSpec
from repro.parallel.layout import ParallelLayout
from repro.profiling.hvprof import Hvprof
from repro.utils.seeding import SeedSequenceFactory


@dataclass(frozen=True)
class StudyConfig:
    """Workload and environment of one scaling study."""

    model: str = "edsr-paper"
    batch_per_gpu: int = TRAIN_BATCH_PER_GPU
    cluster: ClusterSpec = LASSEN
    horovod: HorovodConfig = HOROVOD_TUNED
    jitter_sigma: float = COMPUTE_JITTER_SIGMA
    warmup_steps: int = 1
    measure_steps: int = 2
    # Refuse configurations whose per-GPU footprint (params + optimizer +
    # activations + fusion buffer + CUDA context) exceeds HBM — a simulated
    # run must OOM where the real one would (Fig. 9's boundary).
    check_memory: bool = True
    # Strong scaling: fix the *global* batch and shrink the per-GPU share as
    # GPUs are added (the paper runs weak scaling; this is the companion
    # experiment).  ``None`` keeps the paper's weak-scaling regime.
    global_batch: int | None = None
    # Steady-state extrapolation: once ``steady_window`` consecutive measured
    # steps agree within ``steady_rel_tol`` (relative spread), stop simulating
    # and extrapolate the remaining measure steps at the converged value.
    # With the default jitter the spread stays above any tight tolerance, so
    # this only fires for zero-jitter runs — where the measured steps agree
    # to ulp-level accumulator noise and the extrapolated mean matches a
    # full simulation within ~1e-15 relative (pinned by equivalence tests).
    steady_detect: bool = True
    steady_window: int = 3
    steady_rel_tol: float = 1e-9
    # Engine execution mode: "exact" walks every collective schedule through
    # the full transport cost model; "fast" attaches the repro.sim.fastpath
    # trace/replay session, which memoizes each distinct transfer once and
    # replays recurrences bit-identically (equivalence pinned by
    # tests/test_engine_equivalence.py).
    engine_mode: str = "exact"
    # Gradient compression spec ("none", "fp16", "bf16", "topk:<ratio>")
    # applied at the Horovod engine's wire boundary; see docs/compression.md.
    compression: str = "none"
    # Local-SGD sync period H: 1 is synchronous SGD (gradient allreduce
    # every step); H > 1 runs H-1 communication-free local steps between
    # parameter-averaging syncs.
    local_sgd_h: int = 1
    # Parallel layout: the default is pure data parallelism (dp = world
    # size).  Any tp/pp/microbatching routes the point through the hybrid
    # executor (repro.parallel); layouts fold into point digests like any
    # other config field, so dp-only and hybrid points never share cache
    # entries.
    layout: ParallelLayout = ParallelLayout()
    # Workload scenario: what one step processes.  The default (the
    # paper's single-image/single-scale workload) routes through the
    # registered cost model and the unchanged step loop, so every
    # pre-existing simulated anchor stays bit-identical.  Multi-scale
    # specs swap in the multi-head cost structure; temporal specs
    # (frames > 1) run the video BPTT loop — frames-1 communication-free
    # frame steps, then a sequence-boundary step carrying the gradient
    # allreduce and the update.  Folds into point digests like any other
    # config field.
    workload: ScenarioSpec = IMAGE_SPEC

    def __post_init__(self) -> None:
        if self.batch_per_gpu < 1:
            raise ConfigError("batch_per_gpu must be >= 1")
        if self.measure_steps < 1:
            raise ConfigError("measure_steps must be >= 1")
        if self.steady_window < 2:
            raise ConfigError("steady_window must be >= 2")
        if self.steady_rel_tol < 0:
            raise ConfigError("steady_rel_tol must be >= 0")
        if self.engine_mode not in ("exact", "fast"):
            raise ConfigError(
                f"engine_mode must be 'exact' or 'fast', got {self.engine_mode!r}"
            )
        if self.local_sgd_h < 1:
            raise ConfigError(
                f"local_sgd_h must be >= 1, got {self.local_sgd_h}"
            )
        if self.local_sgd_h > self.measure_steps:
            # a measurement window shorter than one period would never
            # execute a parameter sync and report zero communication
            raise ConfigError(
                f"measure_steps ({self.measure_steps}) must cover at least "
                f"one local-SGD period (local_sgd_h={self.local_sgd_h})"
            )
        if not isinstance(self.layout, ParallelLayout):
            raise ConfigError(
                f"layout must be a ParallelLayout, got {self.layout!r}"
            )
        if not self.layout.is_pure_dp and self.local_sgd_h > 1:
            raise ConfigError(
                "hybrid (tp/pp) layouts do not compose with local-SGD "
                f"(local_sgd_h={self.local_sgd_h}); run one or the other"
            )
        if not isinstance(self.workload, ScenarioSpec):
            raise ConfigError(
                f"workload must be a ScenarioSpec, got {self.workload!r}"
            )
        if self.workload.is_temporal and self.local_sgd_h > 1:
            raise ConfigError(
                "temporal (video) workloads already own the periodic step "
                "structure; they do not compose with local-SGD "
                f"(local_sgd_h={self.local_sgd_h})"
            )
        if self.workload.is_temporal and self.workload.frames > self.measure_steps:
            # a measurement window shorter than one sequence would never
            # cross a sequence boundary and report zero communication
            raise ConfigError(
                f"measure_steps ({self.measure_steps}) must cover at least "
                f"one video sequence (frames={self.workload.frames})"
            )
        if not self.workload.is_degenerate and not self.layout.is_pure_dp:
            raise ConfigError(
                "hybrid (tp/pp) layouts support only the default workload "
                f"scenario for now, got {self.workload.name!r}"
            )
        CompressionConfig.parse(self.compression)  # raises ConfigError


@dataclass
class ScalingPoint:
    """Measured state of one (scenario, gpu count) run."""

    scenario: str
    num_gpus: int
    images_per_second: float
    step_time: float
    forward_time: float
    backward_time: float
    exposed_comm_time: float
    coordination_time: float
    update_time: float
    blocking_time: float  # pageable staging stealing compute (default path)
    comm_wall_time: float  # sum of collective durations
    message_sizes: list[int] = field(default_factory=list)
    regcache_hit_rate: float | None = None
    efficiency: float | None = None
    # Steady-state bookkeeping: how many measure steps were actually
    # simulated vs extrapolated at the converged per-step time.
    simulated_steps: int = 0
    extrapolated_steps: int = 0
    # Recovery report for runs under a fault plan: the itemized
    # time-to-solution ledger (RecoveryAccounting payload) plus the
    # world-size trajectory and fault-trace digest.  None for clean runs.
    resilience: dict | None = None
    # Hybrid-layout decomposition (dp/tp/pp, bubble fraction, tp/pp comm
    # shares, stage bounds) for points the hybrid executor priced; None
    # for pure data-parallel points.
    parallelism: dict | None = None
    # Workload scenario payload (ScenarioSpec.to_payload) for points run
    # under a non-default spec (multi-scale heads, video sequences);
    # None for the paper's degenerate single-image workload.
    workload: dict | None = None

    @property
    def per_gpu_rate(self) -> float:
        return self.images_per_second / self.num_gpus


class ScalingStudy:
    """Runs the paper's weak-scaling experiment for one scenario.

    With a ``fault_plan``, each point runs the elastic-recovery loop
    instead of the clean steady-state loop: rank failures are detected by
    a heartbeat supervisor, absorbed per the ``recovery`` policy
    (restart-from-checkpoint on the shrunk world by default), and every
    second of overhead is itemized into the point's ``resilience`` report.
    """

    def __init__(
        self,
        scenario: Scenario,
        config: StudyConfig | None = None,
        *,
        fault_plan=None,
        recovery=None,
    ):
        self.scenario = scenario
        self.config = config or StudyConfig()
        self.fault_plan = fault_plan
        self.recovery = recovery
        workload = self.config.workload
        if fault_plan is not None and not workload.is_degenerate:
            raise ConfigError(
                "fault plans support only the default workload scenario "
                f"for now, got {workload.name!r}; run the resilience study "
                "on the single-image workload"
            )
        if workload.is_degenerate:
            # the paper's workload: the registered cost model, unchanged —
            # every pre-existing simulated anchor stays bit-identical
            self.cost: ModelCostModel = get_model_cost(self.config.model)
        else:
            self.cost = get_scenario_cost(
                self.config.model,
                scales=workload.scales,
                patch=workload.patch,
                recurrent=workload.recurrent,
            )
        self.throughput = ThroughputModel(self.cost, self.config.cluster.node.gpu)
        self.memory = TrainingMemoryModel(self.cost)
        # lazily-built hybrid executor; shared across this study's points
        # so its steady-state detector can guard layout changes mid-sweep
        self._hybrid = None

    def batch_for(self, num_gpus: int) -> int:
        """Per-GPU batch at this scale (weak: constant; strong: shrinking)."""
        if self.config.global_batch is not None:
            return max(1, self.config.global_batch // num_gpus)
        return self.config.batch_per_gpu

    # -- single-GPU baseline (no communication) -------------------------------
    def single_gpu_rate(self) -> float:
        batch = self.batch_for(1)
        T = self.config.workload.frames
        if T == 1:
            return self.throughput.images_per_second(batch)
        # video: the optimizer update fires once per sequence, so it
        # amortizes over the frame steps (same arithmetic as the 1-GPU
        # point, so efficiency is exactly 1.0 there)
        step = (
            self.throughput.forward_time(batch)
            + self.throughput.backward_time(batch)
            + self._update_time() / T
        )
        return batch / step

    def _update_time(self) -> float:
        gpu = self.config.cluster.node.gpu
        return (
            self.cost.total_params * OPTIMIZER_BYTES_PER_PARAM / gpu.hbm_bandwidth
        )

    def _gradient_stream(
        self, backward_time: float, rng=None
    ) -> list[PendingTensor]:
        """Per-tensor readiness; optional per-step jitter.

        Real backward passes jitter a few percent step to step, so fusion
        groups (and hence message sizes / registration extents) vary — the
        reason the paper's registration-cache hit rate is ~93%, not ~100%.
        """
        schedule = self.cost.gradient_schedule()
        if rng is None:
            noise = [0.0] * len(schedule)
        else:
            noise = rng.normal(0.0, self.config.jitter_sigma, len(schedule))
        return [
            PendingTensor(
                t.name,
                t.nbytes,
                ready_time=max(0.0, t.ready_fraction * backward_time * (1.0 + eps)),
            )
            for t, eps in zip(schedule, noise)
        ]

    def _parameter_stream(self) -> list[PendingTensor]:
        """Model weights as a zero-ready-time stream (local-SGD sync).

        Parameter tensors mirror the gradient schedule's names and sizes;
        they are all resident when the sync fires, so every ready time is
        zero and fusion packs them as one back-to-back burst.
        """
        return [
            PendingTensor(t.name, t.nbytes, ready_time=0.0)
            for t in self.cost.gradient_schedule()
        ]

    def contexts_per_gpu(self) -> int:
        """Processes holding a CUDA context on each GPU under this policy.

        Singleton visibility leaves one; the legacy full-visibility policy
        leaves one per co-located rank (the Fig. 6a overhead kernels).
        """
        gpn = self.config.cluster.node.gpus_per_node
        return self.scenario.policy.app_mask(0, gpn).count

    def check_memory_feasible(self, batch: int) -> None:
        """Raise if the per-GPU training footprint exceeds device memory."""
        gpu = self.config.cluster.node.gpu
        required = (
            self.memory.bytes_required(batch)
            + self.config.horovod.fusion_threshold
            + self.contexts_per_gpu() * gpu.context_overhead_bytes
        )
        if required > gpu.memory_bytes:
            raise ConfigError(
                f"batch {batch} of {self.cost.name} needs "
                f"{required / 2**30:.2f} GiB/GPU "
                f"({self.contexts_per_gpu()} context(s)) but {gpu.name} has "
                f"{gpu.memory_bytes / 2**30:.0f} GiB (simulated OOM)"
            )

    def max_feasible_batch(self) -> int:
        """Largest per-GPU batch that fits under this scenario's policy."""
        gpu = self.config.cluster.node.gpu
        available = (
            gpu.memory_bytes
            - self.config.horovod.fusion_threshold
            - self.contexts_per_gpu() * gpu.context_overhead_bytes
        )
        return self.memory.max_batch(available)

    # -- result cache addressing ----------------------------------------------
    def point_digest(
        self, num_gpus: int, *, fault_plan=None, recovery=None
    ) -> str:
        """Content address of the point this study would produce.

        Folds in everything that determines the result: scenario (policy,
        MV2 config, backend), the full :class:`StudyConfig`, world size and
        per-GPU batch, the ``MV2_*``/``HOROVOD_*``/``REPRO_SIM_*`` environment
        knobs, the fault plan and recovery policy (the study's own unless
        overridden), the digests of any active ``repro.comm`` selection
        tables (so tuned-table runs never alias untuned cached results),
        and the cache version salt.
        """
        from repro.comm.selection import active_table_digests
        from repro.perf.digest import canonical_digest, env_knobs

        if fault_plan is None:
            fault_plan = self.fault_plan
        if recovery is None:
            recovery = self.recovery
        return canonical_digest(
            {
                "kind": "scaling-point",
                "scenario": self.scenario,
                "config": self.config,
                "num_gpus": num_gpus,
                "batch_per_gpu": self.batch_for(num_gpus),
                "env": env_knobs(),
                "fault_plan": fault_plan,
                "recovery": recovery,
                "comm_tables": active_table_digests(),
            }
        )

    # -- one scale point ---------------------------------------------------------
    def run_point(
        self, num_gpus: int, *, hvprof: Hvprof | None = None, cache=None
    ) -> ScalingPoint:
        """Run one point, through the result cache when one is given.

        Profiled runs (``hvprof``) bypass the cache: observers must see the
        live event stream, and op counts depend on the number of simulated
        steps, which steady-state extrapolation would shorten.
        """
        use_cache = (
            cache is not None and getattr(cache, "enabled", True) and hvprof is None
        )
        if use_cache:
            digest = self.point_digest(num_gpus)
            hit = cache.get(digest)
            if hit is not None:
                return point_from_payload(hit)
        point = self._run_point(num_gpus, hvprof=hvprof)
        if use_cache:
            cache.put(digest, point_payload(point))
        return point

    def _run_point(
        self, num_gpus: int, *, hvprof: Hvprof | None = None
    ) -> ScalingPoint:
        if not self.config.layout.is_pure_dp:
            if self.fault_plan is not None:
                raise ConfigError(
                    "hybrid (tp/pp) layouts do not support fault plans yet; "
                    "run the resilience study data-parallel"
                )
            if self._hybrid is None:
                from repro.parallel.executor import HybridExecutor

                self._hybrid = HybridExecutor(self)
            return self._hybrid.run(
                num_gpus, self.config.layout, hvprof=hvprof
            )
        if self.fault_plan is not None and num_gpus > 1:
            return self._run_point_faulty(num_gpus, hvprof=hvprof)
        cfg = self.config
        batch = self.batch_for(num_gpus)
        if cfg.check_memory:
            self.check_memory_feasible(batch)
        forward = self.throughput.forward_time(batch)
        backward = self.throughput.backward_time(batch)
        update = self._update_time()
        T = cfg.workload.frames
        workload_payload = (
            None if cfg.workload.is_degenerate else cfg.workload.to_payload()
        )
        if num_gpus == 1:
            if T > 1:
                # one update per sequence, amortized over the frame steps
                step = forward + backward + update / T
            else:
                step = forward + backward + update
            return ScalingPoint(
                scenario=self.scenario.name,
                num_gpus=1,
                images_per_second=batch / step,
                step_time=step,
                forward_time=forward,
                backward_time=backward,
                exposed_comm_time=0.0,
                coordination_time=0.0,
                update_time=update,
                blocking_time=0.0,
                comm_wall_time=0.0,
                workload=workload_payload,
            )
        cluster = build_cluster(cfg.cluster, num_gpus)
        world_spec = WorldSpec(
            num_ranks=num_gpus,
            policy=self.scenario.policy,
            config=self.scenario.mv2,
        )
        world, comm = build_backend(
            cluster, self.scenario.backend, world_spec=world_spec, num_ranks=num_gpus
        )
        if cfg.engine_mode == "fast":
            from repro.sim.fastpath import enable_fastpath

            enable_fastpath(world)
        if hvprof is not None:
            comm.add_observer(hvprof.observer)
        engine = HorovodEngine(
            comm, cfg.horovod,
            compression=CompressionConfig.parse(cfg.compression),
        )
        backward_eff = backward * straggler_factor(num_gpus, sigma=cfg.jitter_sigma)
        transport = getattr(world, "transport", None)
        # seeded independently of the scenario so that scenario comparisons
        # (Figs. 10-12) see identical per-step jitter (paired runs)
        rng = SeedSequenceFactory(2021).generator("gradient-jitter", num_gpus)
        H = cfg.local_sgd_h
        timing: StepTiming | None = None
        if H > 1 or T > 1:
            # a short run may end before any sync boundary fires; the
            # point's comm fields then report the zero-comm local regime
            timing = StepTiming(
                backward_time=backward_eff, comm_finish=0.0,
                coordination_time=0.0,
            )
        step_times = []
        blocking = 0.0
        # Steady-state extrapolation only makes sense in performance mode:
        # a profiler is counting per-step ops, so every step must be real.
        detector = None
        periodic = None
        if (
            cfg.steady_detect
            and hvprof is None
            and cfg.measure_steps > cfg.steady_window
        ):
            if H > 1 or T > 1:
                from repro.perf.steady import PeriodicSteadyState

                # local-SGD and temporal sequences are mutually exclusive
                # (StudyConfig rejects the combination), so the active
                # cadence is whichever period exceeds one
                periodic = PeriodicSteadyState(
                    max(H, T), cfg.steady_window, cfg.steady_rel_tol
                )
            else:
                from repro.perf.steady import SteadyStateDetector

                detector = SteadyStateDetector(
                    cfg.steady_window, cfg.steady_rel_tol
                )
        next_phase = 0
        for step_index in range(cfg.warmup_steps + cfg.measure_steps):
            if H > 1:
                # local-SGD: H-1 communication-free steps, then a
                # parameter-averaging sync priced through the engine
                if (step_index + 1) % H == 0:
                    staged_before = (
                        transport.max_staged_seconds() if transport else 0.0
                    )
                    timing = engine.run_step(
                        self._parameter_stream(),
                        backward_time=0.0,
                        force_dense=True,
                    )
                    staged_delta = (
                        transport.max_staged_seconds() - staged_before
                        if transport else 0.0
                    )
                    blocking = staged_delta * PAGEABLE_BLOCKING_FACTOR
                    step = (
                        forward + backward_eff + blocking + update
                        + timing.comm_finish
                    )
                else:
                    step = forward + backward_eff + update
                if step_index >= cfg.warmup_steps:
                    step_times.append(step)
                    if (
                        periodic is not None
                        and len(step_times) < cfg.measure_steps
                    ):
                        periodic.observe(step, step_index % H)
                        if periodic.converged():
                            next_phase = (step_index + 1) % H
                            break
                continue
            if T > 1:
                # temporal BPTT over a T-frame sequence: T-1 frame steps
                # run forward+backward only, carrying the recurrent state;
                # the sequence boundary drains the accumulated gradient
                # through the engine (overlapped with the last backward)
                # and applies the one optimizer update per sequence
                if (step_index + 1) % T == 0:
                    stream = self._gradient_stream(backward_eff, rng=rng)
                    staged_before = (
                        transport.max_staged_seconds() if transport else 0.0
                    )
                    timing = engine.run_step(
                        stream, backward_time=backward_eff
                    )
                    staged_delta = (
                        transport.max_staged_seconds() - staged_before
                        if transport else 0.0
                    )
                    blocking = staged_delta * PAGEABLE_BLOCKING_FACTOR
                    step = (
                        forward
                        + max(backward_eff, timing.comm_finish)
                        + blocking
                        + update
                    )
                else:
                    step = forward + backward_eff
                if step_index >= cfg.warmup_steps:
                    step_times.append(step)
                    if (
                        periodic is not None
                        and len(step_times) < cfg.measure_steps
                    ):
                        periodic.observe(step, step_index % T)
                        if periodic.converged():
                            next_phase = (step_index + 1) % T
                            break
                continue
            stream = self._gradient_stream(backward_eff, rng=rng)
            staged_before = transport.max_staged_seconds() if transport else 0.0
            timing = engine.run_step(stream, backward_time=backward_eff)
            # Pageable staging copies block the GPU stream: charge the
            # busiest rank's staging time serially against the step.
            staged_delta = (
                transport.max_staged_seconds() - staged_before if transport else 0.0
            )
            blocking = staged_delta * PAGEABLE_BLOCKING_FACTOR
            step = (
                forward
                + max(backward_eff, timing.comm_finish)
                + blocking
                + update
            )
            if step_index >= cfg.warmup_steps:
                step_times.append(step)
                if (
                    detector is not None
                    and len(step_times) < cfg.measure_steps
                ):
                    detector.observe(step)
                    if detector.converged():
                        break
        assert timing is not None
        simulated_steps = len(step_times)
        extrapolated_steps = cfg.measure_steps - simulated_steps
        if extrapolated_steps:
            # Extend with the converged value and average over the *full*
            # list — the same arithmetic a full simulation performs, with
            # the tail replaced by the steady value.  The residual error is
            # bounded by ``steady_rel_tol`` (at the default 1e-9 detection
            # only ever fires on ulp-level accumulator noise, so the mean
            # agrees with the slow path to ~1e-15 relative).  Local-SGD
            # extrapolation replays the H-step cadence phase-aligned.
            if periodic is not None:
                step_times.extend(
                    periodic.extrapolate(next_phase, extrapolated_steps)
                )
            else:
                step_times.extend(
                    [detector.steady_value()] * extrapolated_steps
                )
        mean_step = sum(step_times) / len(step_times)
        regcache = None
        if self.scenario.backend == "mpi":
            stats = world.regcache_stats()
            regcache = stats["hit_rate"] if stats["hits"] + stats["misses"] else None
        return ScalingPoint(
            scenario=self.scenario.name,
            num_gpus=num_gpus,
            images_per_second=num_gpus * batch / mean_step,
            step_time=mean_step,
            forward_time=forward,
            backward_time=backward_eff,
            exposed_comm_time=timing.exposed_comm_time,
            coordination_time=timing.coordination_time,
            update_time=update,
            blocking_time=blocking,
            comm_wall_time=timing.total_comm_time,
            message_sizes=[m.nbytes for m in timing.messages],
            regcache_hit_rate=regcache,
            simulated_steps=simulated_steps,
            extrapolated_steps=extrapolated_steps,
            workload=workload_payload,
        )

    # -- elastic recovery (performance mode) --------------------------------------
    def _checkpoint_nbytes(self) -> int:
        """Bytes one checkpoint writes: fp32 weights + optimizer state."""
        return int(self.cost.total_params * (4 + OPTIMIZER_BYTES_PER_PARAM))

    def _run_point_faulty(
        self, num_gpus: int, *, hvprof: Hvprof | None = None
    ) -> ScalingPoint:
        """One point under the study's fault plan and recovery policy.

        Mirrors the functional trainer's orchestration on the performance
        model: a heartbeat supervisor detects dead ranks, the recovery
        policy decides between restart-from-checkpoint (steps since the
        last snapshot are discarded as lost work and re-simulated on the
        shrunk ring) and shrink-and-continue; chronic stragglers can be
        blacklisted, and ranks whose outage window ends can be regrown.
        All overheads land in the point's ``resilience`` ledger.
        """
        from repro.errors import RankFailedError
        from repro.faults.injector import FaultInjector
        from repro.resilience.accounting import RecoveryAccounting
        from repro.resilience.policy import RESTART_FROM_CHECKPOINT
        from repro.resilience.supervisor import HeartbeatSupervisor

        cfg = self.config
        batch = self.batch_for(num_gpus)
        if cfg.check_memory:
            self.check_memory_feasible(batch)
        forward = self.throughput.forward_time(batch)
        backward = self.throughput.backward_time(batch)
        update = self._update_time()
        cluster = build_cluster(cfg.cluster, num_gpus)
        world_spec = WorldSpec(
            num_ranks=num_gpus,
            policy=self.scenario.policy,
            config=self.scenario.mv2,
        )
        injector = FaultInjector(self.fault_plan, topology=cluster.topology())
        world, comm = build_backend(
            cluster,
            self.scenario.backend,
            world_spec=world_spec,
            num_ranks=num_gpus,
            faults=injector,
        )
        session = None
        if cfg.engine_mode == "fast":
            from repro.sim.fastpath import enable_fastpath

            session = enable_fastpath(world)
        if hvprof is not None:
            comm.add_observer(hvprof.observer)
        engine = HorovodEngine(
            comm, cfg.horovod,
            compression=CompressionConfig.parse(cfg.compression),
        )
        policy = self.recovery or RESTART_FROM_CHECKPOINT
        supervisor = HeartbeatSupervisor(
            range(num_gpus), injector, policy.heartbeat
        )
        acct = RecoveryAccounting()
        ckpt_nbytes = self._checkpoint_nbytes()
        transport = getattr(world, "transport", None)
        rng = SeedSequenceFactory(2021).generator("gradient-jitter", num_gpus)
        live = list(range(num_gpus))
        # (step_time, world_size) per completed step; truncated on restart
        records: list[tuple[float, int]] = []
        # (step, corrupt) per retained snapshot, oldest first — restart
        # walks newest -> oldest past corrupt files (checksum verification)
        snapshots: list[tuple[int, bool]] = []
        saves = 0
        clock = 0.0
        total_steps = cfg.warmup_steps + cfg.measure_steps
        # Steady-state extrapolation under faults: the detector re-arms on
        # every world perturbation (failure, blacklist, regrow, straggler
        # slowdown) so the recovery transient never poisons the converged
        # value; between perturbations, converged steps replay the steady
        # value without walking the engine.
        detector = None
        periodic = None
        extrapolated = 0
        H = cfg.local_sgd_h
        blocking = 0.0
        timing: StepTiming | None = None
        if H > 1:
            timing = StepTiming(
                backward_time=backward, comm_finish=0.0, coordination_time=0.0
            )
        if (
            cfg.steady_detect
            and hvprof is None
            and cfg.measure_steps > cfg.steady_window
        ):
            if H > 1:
                from repro.perf.steady import PeriodicSteadyState

                periodic = PeriodicSteadyState(
                    H, cfg.steady_window, cfg.steady_rel_tol
                )
            else:
                from repro.perf.steady import SteadyStateDetector

                detector = SteadyStateDetector(
                    cfg.steady_window, cfg.steady_rel_tol
                )
        if policy.restart:
            cost = policy.checkpoint.write_cost(ckpt_nbytes)
            clock += cost
            acct.note_checkpoint(cost)
            snapshots.append((0, injector.checkpoint_corrupt(saves, clock)))
            saves += 1
        while len(records) < total_steps:
            # Whole failure domains are declared atomically: every rank a
            # node/switch/partition fault took down shares one detection
            # window, and each successive group's stall is charged off the
            # *updated* clock — overlapping windows never double-charge.
            groups = supervisor.poll_domains(clock)
            dead = []
            for group in groups:
                members = [d for d in group.detections if d.rank in live]
                if not members:
                    continue
                stall = max(0.0, group.declared_at - clock)
                clock += stall
                acct.note_detection(stall)
                for d in members:
                    live.remove(d.rank)
                dead.extend(members)
            if not live:
                raise RankFailedError(
                    f"all {num_gpus} ranks failed under plan "
                    f"seed={self.fault_plan.seed}"
                )
            if dead:
                engine.shrink_to(sorted(live))
                if session is not None:
                    session.invalidate()
                if detector is not None:
                    detector.rearm()
                if periodic is not None:
                    periodic.rearm()
                if policy.restart:
                    # checksum-verified recovery: walk newest -> oldest,
                    # charging a read per attempt, past corrupt snapshots
                    restore_step = None
                    read = 0.0
                    for snap_step, corrupt in reversed(snapshots):
                        read += policy.checkpoint.read_cost(ckpt_nbytes)
                        if not corrupt:
                            restore_step = snap_step
                            break
                        injector.record(
                            "ckpt-corrupt-skipped", clock,
                            detail=f"step={snap_step}",
                        )
                    if restore_step is None:
                        from repro.errors import CheckpointError

                        raise CheckpointError(
                            f"no valid checkpoint survives under plan "
                            f"seed={self.fault_plan.seed}: all "
                            f"{len(snapshots)} retained snapshot(s) corrupt "
                            f"(keep_last={policy.checkpoint.keep_last})"
                        )
                    lost_steps = len(records) - restore_step
                    if lost_steps > 0:
                        lost = sum(t for t, _ in records[restore_step:])
                        acct.productive_s -= lost
                        acct.note_lost_work(lost, steps=lost_steps)
                        del records[restore_step:]
                    acct.note_restart(read + policy.restart_overhead_s)
                    clock += read + policy.restart_overhead_s
                    injector.record(
                        "restart", clock,
                        detail=f"from step {restore_step} "
                               f"world={len(live)} verified",
                    )
            if policy.blacklist_after > 0:
                for rank in supervisor.over_limit(policy.blacklist_after):
                    if rank in live and len(live) > 1:
                        live.remove(rank)
                        supervisor.drop(rank)
                        engine.shrink_to(sorted(live))
                        if session is not None:
                            session.invalidate()
                        if detector is not None:
                            detector.rearm()
                        if periodic is not None:
                            periodic.rearm()
                        acct.note_blacklist(rank)
                        injector.record(
                            "rank-blacklisted", clock, rank=rank,
                            detail=f"offenses>={policy.blacklist_after}",
                        )
            if policy.regrow:
                for rank in supervisor.recovered(clock):
                    live.append(rank)
                    live.sort()
                    supervisor.readmit(rank)
                    engine.reform_to(list(live))
                    if session is not None:
                        session.invalidate()
                    if detector is not None:
                        detector.rearm()
                    if periodic is not None:
                        periodic.rearm()
                    # the regrown replica's weights ride the re-formed
                    # ring: one comm-layer broadcast of the checkpoint
                    # payload, charged with the restart overhead
                    rebcast = broadcast_weights(engine.comm, ckpt_nbytes)
                    rebcast_s = rebcast.time if rebcast is not None else 0.0
                    acct.note_regrow(
                        rank, policy.restart_overhead_s + rebcast_s
                    )
                    clock += policy.restart_overhead_s + rebcast_s
                    injector.record(
                        "rank-regrown", clock, rank=rank,
                        detail=f"world={len(live)}",
                    )
            step_index = len(records)
            fault_factor = 1.0
            for rank in live:
                f = injector.compute_factor(rank, clock, step_index)
                supervisor.note_compute(rank, f, clock)
                fault_factor = max(fault_factor, f)
            if fault_factor > 1.0 or injector.wire_corruption_active(clock):
                # a straggler slowdown perturbs the step time without any
                # membership change — the converged value is stale.  An
                # active wire-corruption window likewise forces real steps:
                # extrapolation sends no messages, so corruption (and its
                # CRC retransmit cost) would silently vanish.
                if detector is not None:
                    detector.rearm()
                if periodic is not None:
                    periodic.rearm()
            backward_eff = (
                backward
                * straggler_factor(len(live), sigma=cfg.jitter_sigma)
                * fault_factor
            )
            if H == 1:
                # Always draw the gradient stream, even for extrapolated
                # steps: the jitter RNG must consume the same draws as a
                # full run so a re-armed resumption stays aligned with
                # exact simulation.  (Local-SGD never draws: neither the
                # local steps nor the parameter sync carry jitter.)
                stream = self._gradient_stream(backward_eff, rng=rng)
            sync_step = H > 1 and (step_index + 1) % H == 0
            if detector is not None and detector.converged():
                step = detector.steady_value()
                extrapolated += 1
            elif periodic is not None and periodic.converged():
                step = periodic.phase_value(step_index)
                extrapolated += 1
            elif H > 1 and not sync_step:
                step = forward + backward_eff + update
                if periodic is not None and step_index >= cfg.warmup_steps:
                    periodic.observe(step, step_index % H)
            else:
                staged_before = (
                    transport.max_staged_seconds() if transport else 0.0
                )
                if sync_step:
                    timing = engine.run_step(
                        self._parameter_stream(),
                        backward_time=0.0,
                        force_dense=True,
                    )
                else:
                    timing = engine.run_step(stream, backward_time=backward_eff)
                staged_delta = (
                    transport.max_staged_seconds() - staged_before
                    if transport else 0.0
                )
                blocking = staged_delta * PAGEABLE_BLOCKING_FACTOR
                if sync_step:
                    step = (
                        forward + backward_eff + blocking + update
                        + timing.comm_finish
                    )
                else:
                    step = (
                        forward
                        + max(backward_eff, timing.comm_finish)
                        + blocking
                        + update
                    )
                if step_index >= cfg.warmup_steps:
                    if detector is not None:
                        detector.observe(step)
                    if periodic is not None:
                        periodic.observe(step, step_index % H)
            records.append((step, len(live)))
            clock += step
            acct.note_productive(step)
            if policy.restart and policy.checkpoint.due(len(records)):
                cost = policy.checkpoint.write_cost(ckpt_nbytes)
                clock += cost
                acct.note_checkpoint(cost)
                snapshots.append(
                    (len(records), injector.checkpoint_corrupt(saves, clock))
                )
                saves += 1
                # retention rotation mirrors CheckpointManager.keep_last
                del snapshots[: -policy.checkpoint.keep_last]
        measured = records[cfg.warmup_steps:]
        mean_step = sum(t for t, _ in measured) / len(measured)
        regcache = None
        if self.scenario.backend == "mpi":
            stats = world.regcache_stats()
            regcache = stats["hit_rate"] if stats["hits"] + stats["misses"] else None
        trace_kinds: dict[str, int] = {}
        for event in injector.trace:
            trace_kinds[event.kind] = trace_kinds.get(event.kind, 0) + 1
        resilience = {
            **acct.to_payload(),
            # the independently-accumulated simulation clock: the chaos
            # invariant `productive + overheads == wall clock` checks the
            # ledger against this, not against its own sum
            "wall_clock_s": clock,
            "world_sizes": [w for _, w in records],
            "final_world_size": len(live),
            "trace_digest": injector.trace.digest(),
            "trace_events": len(injector.trace),
            "trace_kinds": {k: trace_kinds[k] for k in sorted(trace_kinds)},
        }
        return ScalingPoint(
            scenario=self.scenario.name,
            num_gpus=num_gpus,
            images_per_second=(
                sum(w * batch for _, w in measured)
                / sum(t for t, _ in measured)
            ),
            step_time=mean_step,
            forward_time=forward,
            backward_time=backward,
            exposed_comm_time=timing.exposed_comm_time,
            coordination_time=timing.coordination_time,
            update_time=update,
            blocking_time=blocking,
            comm_wall_time=timing.total_comm_time,
            message_sizes=[m.nbytes for m in timing.messages],
            regcache_hit_rate=regcache,
            simulated_steps=len(records) - extrapolated,
            extrapolated_steps=extrapolated,
            resilience=resilience,
        )

    # -- full sweep ---------------------------------------------------------------
    def run(
        self, gpu_counts: list[int], *, jobs: int = 1, cache=None
    ) -> list[ScalingPoint]:
        """Run the sweep; ``jobs > 1`` fans points out over worker processes.

        The parallel path requires a registered scenario (workers rebuild
        the study from its name); a custom scenario object falls back to
        the serial path.  Results are merged in ``gpu_counts`` order either
        way — worker completion order never changes the output.
        """
        base = self.single_gpu_rate()
        if jobs != 1 and self._parallel_safe():
            from repro.perf.parallel import (
                PointJob,
                active_table_payloads,
                run_point_jobs,
            )

            tables = active_table_payloads()
            point_jobs = [
                PointJob(
                    self.scenario.name, g, self.config,
                    fault_plan=self.fault_plan, recovery=self.recovery,
                    comm_tables=tables,
                )
                for g in gpu_counts
            ]
            points = run_point_jobs(point_jobs, workers=jobs, cache=cache)
        else:
            points = [self.run_point(g, cache=cache) for g in gpu_counts]
        for point in points:
            point.efficiency = point.images_per_second / (point.num_gpus * base)
        return points

    def _parallel_safe(self) -> bool:
        """True iff workers can reconstruct this exact study by name."""
        from repro.core.scenarios import scenario_by_name

        try:
            return scenario_by_name(self.scenario.name) == self.scenario
        except ConfigError:
            return False


# -- cache (de)serialization ---------------------------------------------------
def point_payload(point: ScalingPoint) -> dict:
    """JSON-encodable form of a point (floats round-trip exactly)."""
    return asdict(point)


def point_from_payload(payload: dict) -> ScalingPoint:
    """Rebuild a :class:`ScalingPoint` from :func:`point_payload` output."""
    return ScalingPoint(**payload)


#: the paper's sweep: 1 node (4 GPUs) up to 128 Lassen nodes (512 GPUs)
PAPER_GPU_COUNTS = [4, 8, 16, 32, 64, 128, 256, 512]
