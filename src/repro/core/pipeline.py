"""The three-phase optimization methodology of §III.

1. **Distribute** — add Horovod data parallelism to the single-GPU model
   (broadcast parameters, wrap the optimizer, scale the LR).
2. **Profile** — run training steps under hvprof and bucket allreduce time
   by message size; diagnose the dominant inefficiency.
3. **Optimize** — apply MPI-layer fixes (registration cache,
   ``MV2_VISIBLE_DEVICES``) and quantify the improvement.

:class:`OptimizationPipeline` automates the workflow and reproduces the
diagnosis in the paper's §III-B: *"Large messages are being sent
inefficiently ... because DL frameworks are in conflict with CUDA IPC."*
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scenarios import MPI_DEFAULT, MPI_OPT, Scenario
from repro.core.study import ScalingStudy, StudyConfig
from repro.profiling.bins import PAPER_BINS
from repro.profiling.hvprof import Hvprof
from repro.profiling.report import comparison_table, improvement_summary
from repro.utils.units import MIB


@dataclass
class PipelineReport:
    """Findings of one pipeline run."""

    num_gpus: int
    default_profile: Hvprof
    optimized_profile: Hvprof
    diagnosis: list[str] = field(default_factory=list)
    recommendations: list[str] = field(default_factory=list)
    improvement_pct: dict[str, float] = field(default_factory=dict)
    throughput_gain_pct: float = 0.0

    def table(self) -> str:
        return comparison_table(self.default_profile, self.optimized_profile)


class OptimizationPipeline:
    """Distribute -> profile -> optimize, end to end."""

    #: a bin whose mean per-op time exceeds this multiple of the optimized
    #: estimate is flagged as inefficient
    LARGE_MESSAGE_FLAG_RATIO = 1.5

    def __init__(
        self,
        *,
        num_gpus: int = 4,
        steps: int = 100,
        config: StudyConfig | None = None,
        baseline: Scenario = MPI_DEFAULT,
        optimized: Scenario = MPI_OPT,
    ):
        self.num_gpus = num_gpus
        self.steps = steps
        self.config = config or StudyConfig()
        self.baseline = baseline
        self.optimized = optimized

    def _profile(self, scenario: Scenario) -> tuple[Hvprof, float]:
        from dataclasses import replace

        hv = Hvprof()
        study = ScalingStudy(
            scenario,
            replace(self.config, warmup_steps=1, measure_steps=self.steps),
        )
        point = study.run_point(self.num_gpus, hvprof=hv)
        return hv, point.images_per_second

    def run(self) -> PipelineReport:
        """Execute all three phases and assemble the report."""
        # Phase 1+2: distributed default run under the profiler
        default_profile, default_rate = self._profile(self.baseline)
        # Phase 3: apply MPI-layer optimizations, re-profile
        optimized_profile, optimized_rate = self._profile(self.optimized)

        report = PipelineReport(
            num_gpus=self.num_gpus,
            default_profile=default_profile,
            optimized_profile=optimized_profile,
        )
        report.improvement_pct = improvement_summary(
            default_profile, optimized_profile
        )
        report.throughput_gain_pct = (
            100.0 * (optimized_rate - default_rate) / default_rate
        )

        # Diagnosis: which bins carry the loss?
        default_bins = default_profile.by_bin("allreduce")
        optimized_bins = optimized_profile.by_bin("allreduce")
        for size_bin in PAPER_BINS:
            d, o = default_bins[size_bin], optimized_bins[size_bin]
            if d.count == 0 or o.count == 0:
                continue
            mean_d = d.total_time / d.count
            mean_o = o.total_time / o.count
            if size_bin.low >= 16 * MIB and mean_d > self.LARGE_MESSAGE_FLAG_RATIO * mean_o:
                report.diagnosis.append(
                    f"large messages ({size_bin.label}) are sent inefficiently: "
                    f"{mean_d * 1e3:.1f} ms vs {mean_o * 1e3:.1f} ms achievable — "
                    "the DL framework's CUDA_VISIBLE_DEVICES restriction is in "
                    "conflict with CUDA IPC"
                )
        if report.diagnosis:
            report.recommendations.append(
                "set MV2_VISIBLE_DEVICES=all so the MPI layer regains CUDA IPC "
                "while CUDA_VISIBLE_DEVICES keeps the framework restricted"
            )
        if not self.baseline.mv2.registration_cache:
            report.recommendations.append(
                "enable the InfiniBand registration cache "
                "(MV2_USE_REGISTRATION_CACHE=1); PyTorch needs no custom allocator"
            )
        return report
