"""Scaling-efficiency math (Fig. 13's y-axis).

Weak scaling with fixed per-GPU batch: ideal throughput at ``p`` GPUs is
``p x`` the single-GPU throughput, so

``efficiency(p) = images_per_second(p) / (p * images_per_second(1))``.
"""

from __future__ import annotations

from repro.errors import ConfigError


def scaling_efficiency(
    images_per_second: float, num_gpus: int, single_gpu_rate: float
) -> float:
    if num_gpus < 1:
        raise ConfigError(f"num_gpus must be >= 1, got {num_gpus}")
    if single_gpu_rate <= 0:
        raise ConfigError("single_gpu_rate must be > 0")
    return images_per_second / (num_gpus * single_gpu_rate)


def speedup(optimized_rate: float, baseline_rate: float) -> float:
    """Throughput ratio (the paper's '1.26x' is this number)."""
    if baseline_rate <= 0:
        raise ConfigError("baseline_rate must be > 0")
    return optimized_rate / baseline_rate


def efficiency_gain_points(opt_eff: float, default_eff: float) -> float:
    """Percentage-point gain (the paper's '+15.6%')."""
    return 100.0 * (opt_eff - default_eff)
