"""The paper's core contribution: MPI-level optimization of DLSR training.

This package assembles the substrates into the paper's experiments:

* :mod:`repro.core.scenarios` — the named configurations **MPI**,
  **MPI-Reg**, **MPI-Opt** (§III-D) and **NCCL**;
* :mod:`repro.core.visible_devices` — the ``CUDA_VISIBLE_DEVICES`` /
  ``MV2_VISIBLE_DEVICES`` mechanism (Figs. 6-7);
* :mod:`repro.core.study` — the end-to-end scaling study harness
  (Figs. 10-13);
* :mod:`repro.core.efficiency` — scaling-efficiency math;
* :mod:`repro.core.pipeline` — the three-phase optimization methodology
  of §III (distribute -> profile -> optimize);
* :mod:`repro.core.calibration` — every constant anchored to a number in
  the paper, in one place.
"""

from repro.core.scenarios import (
    SCENARIOS,
    SCENARIO_SPECS,
    IMAGE_SPEC,
    MULTISCALE_SPEC,
    MULTISCALE8_SPEC,
    VIDEO_SPEC,
    Scenario,
    ScenarioSpec,
    scenario_by_name,
    scenario_spec_by_name,
    MPI_DEFAULT,
    MPI_REG,
    MPI_OPT,
    MPI_ALL_VISIBLE,
    NCCL_SCENARIO,
)
from repro.core.visible_devices import visibility_table
from repro.core.study import ScalingPoint, ScalingStudy, StudyConfig
from repro.core.efficiency import scaling_efficiency, speedup
from repro.core.pipeline import OptimizationPipeline, PipelineReport
from repro.core.tuning import HorovodTuner, TuningResult

__all__ = [
    "Scenario",
    "ScenarioSpec",
    "SCENARIOS",
    "SCENARIO_SPECS",
    "IMAGE_SPEC",
    "MULTISCALE_SPEC",
    "MULTISCALE8_SPEC",
    "VIDEO_SPEC",
    "scenario_by_name",
    "scenario_spec_by_name",
    "MPI_DEFAULT",
    "MPI_REG",
    "MPI_OPT",
    "MPI_ALL_VISIBLE",
    "NCCL_SCENARIO",
    "visibility_table",
    "ScalingStudy",
    "ScalingPoint",
    "StudyConfig",
    "scaling_efficiency",
    "speedup",
    "OptimizationPipeline",
    "PipelineReport",
    "HorovodTuner",
    "TuningResult",
]
