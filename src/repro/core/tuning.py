"""Horovod parameter auto-tuning (paper §II-D).

The paper states: "the HOROVOD_FUSION_THRESHOLD and HOROVOD_CYCLE_TIME are
carefully tuned at each scale to maximize training throughput according to
[7]".  This module implements that tuning sweep: for a given scenario and
GPU count it grid-searches the two knobs with the scaling-study harness
and returns the best configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scenarios import Scenario
from repro.core.study import ScalingStudy, StudyConfig
from repro.errors import ConfigError
from repro.horovod.env import HorovodConfig
from repro.utils.units import MIB

#: default grids: the ranges practitioners sweep
DEFAULT_THRESHOLDS = tuple(m * MIB for m in (16, 32, 64, 128))
DEFAULT_CYCLE_TIMES = (3.5e-3, 10e-3, 25e-3, 55e-3, 100e-3)


@dataclass
class TuningResult:
    """Outcome of one grid search."""

    scenario: str
    num_gpus: int
    best: HorovodConfig
    best_images_per_second: float
    grid: list[tuple[int, float, float]] = field(default_factory=list)
    # (fusion_threshold, cycle_time_s, images_per_second) per grid point

    def improvement_over(self, threshold: int, cycle_time_s: float) -> float:
        """Speedup of the tuned config over a named grid point."""
        for t, c, rate in self.grid:
            if t == threshold and abs(c - cycle_time_s) < 1e-12:
                return self.best_images_per_second / rate
        raise ConfigError(
            f"grid point ({threshold}, {cycle_time_s}) was not swept"
        )


class HorovodTuner:
    """Grid-searches fusion threshold x cycle time at one scale."""

    def __init__(
        self,
        scenario: Scenario,
        *,
        thresholds: tuple[int, ...] = DEFAULT_THRESHOLDS,
        cycle_times: tuple[float, ...] = DEFAULT_CYCLE_TIMES,
        base_config: StudyConfig | None = None,
    ):
        if not thresholds or not cycle_times:
            raise ConfigError("tuner needs non-empty grids")
        self.scenario = scenario
        self.thresholds = thresholds
        self.cycle_times = cycle_times
        self.base_config = base_config or StudyConfig(measure_steps=1)

    def tune(self, num_gpus: int) -> TuningResult:
        best_rate = -1.0
        best_config: HorovodConfig | None = None
        grid: list[tuple[int, float, float]] = []
        for threshold in self.thresholds:
            for cycle in self.cycle_times:
                horovod = HorovodConfig(
                    fusion_threshold=threshold, cycle_time_s=cycle
                )
                config = StudyConfig(
                    model=self.base_config.model,
                    batch_per_gpu=self.base_config.batch_per_gpu,
                    cluster=self.base_config.cluster,
                    horovod=horovod,
                    jitter_sigma=self.base_config.jitter_sigma,
                    warmup_steps=self.base_config.warmup_steps,
                    measure_steps=self.base_config.measure_steps,
                )
                rate = ScalingStudy(self.scenario, config).run_point(
                    num_gpus
                ).images_per_second
                grid.append((threshold, cycle, rate))
                if rate > best_rate:
                    best_rate = rate
                    best_config = horovod
        assert best_config is not None
        return TuningResult(
            scenario=self.scenario.name,
            num_gpus=num_gpus,
            best=best_config,
            best_images_per_second=best_rate,
            grid=grid,
        )
