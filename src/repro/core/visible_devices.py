"""The device-visibility mechanism (paper Figs. 6 and 7).

The conflict: Python DL frameworks aggressively create contexts on every
visible GPU (Fig. 6a, "overhead kernels"), so the recommended fix is
``CUDA_VISIBLE_DEVICES=local_rank`` — but that also blinds the MPI library,
disabling CUDA IPC (Fig. 6b).  The paper's proposal (Fig. 7): a separate
``MV2_VISIBLE_DEVICES`` consulted only by MVAPICH2, legal since CUDA 10.1
no longer requires peer devices to be visible for IPC opens.

This module provides diagnostics over that mechanism; the enforcement
itself lives in :func:`repro.mpi.process.build_world` and
:meth:`repro.mpi.transports.TransportModel.can_ipc`.
"""

from __future__ import annotations

from repro.hardware.cluster import Cluster
from repro.mpi.process import RankContext
from repro.mpi.transports import TransportModel
from repro.utils.tables import TextTable
from repro.utils.units import format_bytes


def visibility_table(ranks: list[RankContext]) -> str:
    """Render the Fig. 7 table: per-rank app vs. MPI device visibility."""
    table = TextTable(
        ["Rank", "GPU", "CUDA_VISIBLE_DEVICES", "MV2-effective devices"],
        title="Device visibility (paper Fig. 7)",
    )
    for r in ranks:
        table.add_row(r.rank, r.physical_device, str(r.app_ctx.mask), str(r.mpi_mask))
    return table.render()


def overhead_kernel_report(cluster: Cluster, ranks: list[RankContext]) -> str:
    """Per-GPU context memory: quantifies Fig. 6a's overhead kernels."""
    table = TextTable(
        ["GPU", "Contexts", "Context memory", "Free HBM"],
        title="Overhead-kernel footprint (paper Fig. 6a)",
    )
    node_ids = sorted({r.node_id for r in ranks})
    for node_id in node_ids:
        node = cluster.nodes[node_id]
        for ref in node.gpu_refs:
            pool = node.gpu_memory[ref]
            ctx_bytes = sum(
                size for tag, size in pool.used_by_tag().items()
                if tag.startswith("cuda-context")
            )
            contexts = sum(
                1 for tag in pool.used_by_tag() if tag.startswith("cuda-context")
            )
            table.add_row(
                str(ref), contexts, format_bytes(ctx_bytes), format_bytes(pool.free)
            )
    return table.render()


def ipc_matrix(transport: TransportModel, ranks: list[RankContext]) -> str:
    """Which intra-node rank pairs may use CUDA IPC under this config."""
    table = TextTable(
        ["Pair", "Same node", "IPC available"],
        title="CUDA IPC availability",
    )
    for a in ranks:
        for b in ranks:
            if a.rank >= b.rank:
                continue
            if a.node_id != b.node_id:
                continue
            table.add_row(
                f"{a.rank}<->{b.rank}", "yes", "yes" if transport.can_ipc(a, b) else "no"
            )
    return table.render()
