"""Every constant anchored to a number in the paper, in one place.

Anchors (paper):

* Fig. 1  — single V100: EDSR ~10.3 img/s (batch 4), ResNet-50 ~360 img/s;
* §IV-C   — EDSR with 32 residual blocks, upscale x2, residual scaling 0.1,
  batch 4, DIV2K;
* Table I — allreduce bins: ~0% gain below 16 MB, ~53%/50% gain at
  16-32/32-64 MB, 45.4% total;
* §VII    — +5.1% average throughput from the registration cache, 93%
  cache hit rate, +26% throughput and +15.6 points of scaling efficiency
  from MPI-Opt at 512 GPUs; default drops below 60% efficiency, MPI-Opt
  stays above 70%.
"""

from __future__ import annotations

from repro.horovod.env import HorovodConfig, TUNED_FOR_EDSR

#: paper Fig. 1 anchors (images/second on one V100)
EDSR_SINGLE_GPU_IMG_PER_SEC = 10.3
RESNET50_SINGLE_GPU_IMG_PER_SEC = 360.0

#: paper training configuration (§IV-C / §V)
TRAIN_BATCH_PER_GPU = 4
TRAIN_LR_PATCH = 48
TRAIN_UPSCALE = 2

#: Horovod tuning used for the paper-scale workload (§II-D: tuned per scale)
HOROVOD_TUNED: HorovodConfig = TUNED_FOR_EDSR

#: per-rank compute jitter (std-dev fraction); drives the straggler tax
COMPUTE_JITTER_SIGMA = 0.05

#: pageable staging copies are synchronous w.r.t. the GPU stream: while a
#: rank drives its D2H/H2D halves it also waits on the paired process's
#: half and on DRAM/copy-engine contention, so the compute stall is larger
#: than the rank's own copy time.  2.2x maps the busiest rank's copy time
#: to the full staged-phase stall.
PAGEABLE_BLOCKING_FACTOR = 1.6

#: optimizer update reads params+grads+2 Adam moments and writes params+moments
OPTIMIZER_BYTES_PER_PARAM = 6 * 4

#: paper targets used by benches to check reproduction *shape*
TARGETS = {
    "fig1_edsr_img_s": 10.3,
    "fig1_resnet_img_s": 360.0,
    "table1_total_improvement_pct": 45.4,
    "table1_16_32_improvement_pct": 53.1,
    "table1_32_64_improvement_pct": 49.7,
    "fig11_regcache_gain_pct": 5.1,
    "fig11_regcache_hit_rate": 0.93,
    "fig12_throughput_gain_pct": 26.0,
    "fig13_default_efficiency_512": 0.60,   # default drops below this
    "fig13_opt_efficiency_512": 0.70,       # MPI-Opt stays above this
    "fig13_efficiency_gain_points": 15.6,
}
