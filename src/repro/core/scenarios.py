"""The paper's named configurations (§III-D).

Every scenario launches one rank per GPU with
``CUDA_VISIBLE_DEVICES=local_rank`` (the memory-safe discipline of
Fig. 6b); they differ only in the MPI layer:

* **MPI** — stock MVAPICH2-GDR under that discipline: CUDA IPC silently
  lost (host-staged intra-node path), registration cache off;
* **MPI-Reg** — registration cache enabled (§III-D), IPC still lost;
* **MPI-Opt** — registration cache **and** the proposed
  ``MV2_VISIBLE_DEVICES=all``, restoring CUDA IPC for MPI while the
  framework stays restricted (Fig. 7);
* **NCCL** — the NCCL backend, which manages IPC itself and is unaffected
  by the visibility conflict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.mpi.env import Mv2Config
from repro.mpi.process import AllDevicesPolicy, DevicePolicy, SingletonDevicePolicy


@dataclass(frozen=True)
class Scenario:
    """A fully-specified communication configuration."""

    name: str
    description: str
    backend: str  # "mpi" | "nccl"
    mv2: Mv2Config = field(default_factory=Mv2Config)
    policy: DevicePolicy = field(default_factory=SingletonDevicePolicy)

    def __post_init__(self) -> None:
        if self.backend not in ("mpi", "nccl"):
            raise ConfigError(f"backend must be mpi|nccl, got {self.backend!r}")


MPI_DEFAULT = Scenario(
    name="MPI",
    description="Default MVAPICH2-GDR: IPC lost under CUDA_VISIBLE_DEVICES, "
    "registration cache disabled",
    backend="mpi",
    mv2=Mv2Config(registration_cache=False, mv2_visible_devices=None),
)

MPI_REG = Scenario(
    name="MPI-Reg",
    description="MVAPICH2-GDR with registration cache enabled (IPC still lost)",
    backend="mpi",
    mv2=Mv2Config(registration_cache=True, mv2_visible_devices=None),
)

MPI_OPT = Scenario(
    name="MPI-Opt",
    description="Proposed design: registration cache + MV2_VISIBLE_DEVICES=all "
    "restores CUDA IPC for the MPI layer",
    backend="mpi",
    mv2=Mv2Config(registration_cache=True, mv2_visible_devices="all"),
)

NCCL_SCENARIO = Scenario(
    name="NCCL",
    description="NCCL backend (self-managed IPC, unaffected by visibility)",
    backend="nccl",
)

#: the pre-MV2_VISIBLE_DEVICES workaround (Fig. 6a): leave every GPU
#: visible to every process so IPC works — at the cost of one overhead
#: context per co-located process on every GPU, shrinking the usable batch
#: range (the Fig. 9 interaction §III-C describes)
MPI_ALL_VISIBLE = Scenario(
    name="MPI-AllVisible",
    description="Legacy workaround: full CUDA_VISIBLE_DEVICES keeps IPC but "
    "leaves overhead kernels on every GPU",
    backend="mpi",
    mv2=Mv2Config(registration_cache=True, mv2_visible_devices=None),
    policy=AllDevicesPolicy(),
)

SCENARIOS: tuple[Scenario, ...] = (
    MPI_DEFAULT, MPI_REG, MPI_OPT, NCCL_SCENARIO, MPI_ALL_VISIBLE,
)


def scenario_by_name(name: str) -> Scenario:
    for scenario in SCENARIOS:
        if scenario.name.lower() == name.lower():
            return scenario
    raise ConfigError(
        f"unknown scenario {name!r}; available: {[s.name for s in SCENARIOS]}"
    )
