"""The paper's named configurations (§III-D) and workload scenario specs.

Two orthogonal "scenario" axes live here:

**Communication scenarios** (:class:`Scenario`): every scenario launches
one rank per GPU with ``CUDA_VISIBLE_DEVICES=local_rank`` (the
memory-safe discipline of Fig. 6b); they differ only in the MPI layer:

* **MPI** — stock MVAPICH2-GDR under that discipline: CUDA IPC silently
  lost (host-staged intra-node path), registration cache off;
* **MPI-Reg** — registration cache enabled (§III-D), IPC still lost;
* **MPI-Opt** — registration cache **and** the proposed
  ``MV2_VISIBLE_DEVICES=all``, restoring CUDA IPC for MPI while the
  framework stays restricted (Fig. 7);
* **NCCL** — the NCCL backend, which manages IPC itself and is unaffected
  by the visibility conflict.

**Workload scenarios** (:class:`ScenarioSpec`): what the job trains and
serves — patch geometry, the set of upscale factors, and temporal extent.
The paper's workload (single still images, one scale) is the *degenerate*
spec, and every existing digest, sweep, and bit-identity suite keeps its
semantics under it; video (frame sequences with carried recurrent state)
and multi-scale (several upsampler heads sharing one trunk) are the first
non-trivial members.  See ``docs/scenarios.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.models.blocks import SUPPORTED_SCALES
from repro.mpi.env import Mv2Config
from repro.mpi.process import AllDevicesPolicy, DevicePolicy, SingletonDevicePolicy


@dataclass(frozen=True)
class Scenario:
    """A fully-specified communication configuration."""

    name: str
    description: str
    backend: str  # "mpi" | "nccl"
    mv2: Mv2Config = field(default_factory=Mv2Config)
    policy: DevicePolicy = field(default_factory=SingletonDevicePolicy)

    def __post_init__(self) -> None:
        if self.backend not in ("mpi", "nccl"):
            raise ConfigError(f"backend must be mpi|nccl, got {self.backend!r}")


MPI_DEFAULT = Scenario(
    name="MPI",
    description="Default MVAPICH2-GDR: IPC lost under CUDA_VISIBLE_DEVICES, "
    "registration cache disabled",
    backend="mpi",
    mv2=Mv2Config(registration_cache=False, mv2_visible_devices=None),
)

MPI_REG = Scenario(
    name="MPI-Reg",
    description="MVAPICH2-GDR with registration cache enabled (IPC still lost)",
    backend="mpi",
    mv2=Mv2Config(registration_cache=True, mv2_visible_devices=None),
)

MPI_OPT = Scenario(
    name="MPI-Opt",
    description="Proposed design: registration cache + MV2_VISIBLE_DEVICES=all "
    "restores CUDA IPC for the MPI layer",
    backend="mpi",
    mv2=Mv2Config(registration_cache=True, mv2_visible_devices="all"),
)

NCCL_SCENARIO = Scenario(
    name="NCCL",
    description="NCCL backend (self-managed IPC, unaffected by visibility)",
    backend="nccl",
)

#: the pre-MV2_VISIBLE_DEVICES workaround (Fig. 6a): leave every GPU
#: visible to every process so IPC works — at the cost of one overhead
#: context per co-located process on every GPU, shrinking the usable batch
#: range (the Fig. 9 interaction §III-C describes)
MPI_ALL_VISIBLE = Scenario(
    name="MPI-AllVisible",
    description="Legacy workaround: full CUDA_VISIBLE_DEVICES keeps IPC but "
    "leaves overhead kernels on every GPU",
    backend="mpi",
    mv2=Mv2Config(registration_cache=True, mv2_visible_devices=None),
    policy=AllDevicesPolicy(),
)

SCENARIOS: tuple[Scenario, ...] = (
    MPI_DEFAULT, MPI_REG, MPI_OPT, NCCL_SCENARIO, MPI_ALL_VISIBLE,
)


def scenario_by_name(name: str) -> Scenario:
    for scenario in SCENARIOS:
        if scenario.name.lower() == name.lower():
            return scenario
    raise ConfigError(
        f"unknown scenario {name!r}; available: {[s.name for s in SCENARIOS]}"
    )


# -- workload scenario specs ---------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """What one training/serving step processes: the workload geometry.

    ``frames`` is the temporal extent of one sample: 1 is a still image
    (the paper's workload); ``frames > 1`` is a video clip trained with
    truncated BPTT — ``frames - 1`` communication-free frame steps carry
    gradients and hidden state forward, and the sequence-boundary step
    runs the gradient allreduce plus the optimizer update (the same
    periodic structure as local-SGD, with the collective carrying
    gradients instead of parameters).  ``scales`` prices one upsampler
    head per factor on a shared trunk; a single still scale is the
    degenerate case that routes through the registered cost model
    unchanged, keeping every pre-existing simulated anchor bit-identical.
    """

    name: str = "image"
    patch: int = 48
    scales: tuple[int, ...] = (2,)
    frames: int = 1
    #: serving-side pacing of a session's frames (unused when frames == 1)
    frame_rate_fps: float = 24.0
    #: carry a recurrent hidden state between frames (prices the fusion
    #: conv and its activation memory; implies per-frame sequencing)
    recurrent: bool = False

    def __post_init__(self) -> None:
        if self.patch < 8:
            raise ConfigError(f"patch must be >= 8, got {self.patch}")
        object.__setattr__(self, "scales", tuple(self.scales))
        if not self.scales:
            raise ConfigError("a scenario needs at least one upscale factor")
        for s in self.scales:
            if s not in SUPPORTED_SCALES:
                raise ConfigError(
                    f"unsupported upscale factor {s}; supported scales are "
                    f"{SUPPORTED_SCALES}"
                )
        if tuple(sorted(set(self.scales))) != self.scales:
            raise ConfigError(
                f"scales must be strictly increasing and unique, "
                f"got {self.scales}"
            )
        if self.frames < 1:
            raise ConfigError(f"frames must be >= 1, got {self.frames}")
        if self.frame_rate_fps <= 0:
            raise ConfigError(
                f"frame_rate_fps must be > 0, got {self.frame_rate_fps}"
            )
        if self.recurrent and self.frames < 2:
            raise ConfigError(
                "a recurrent scenario needs frames >= 2 (hidden state is "
                "carried *between* frames)"
            )

    @property
    def is_degenerate(self) -> bool:
        """True for the paper's workload: the registered cost model applies
        unchanged (single still image, one x2 head, 48x48 LR patches)."""
        return (
            self.frames == 1
            and self.scales == (2,)
            and self.patch == 48
            and not self.recurrent
        )

    @property
    def is_temporal(self) -> bool:
        return self.frames > 1

    def sample_shape(self, n_colors: int = 3) -> tuple[int, int, int, int]:
        """Per-step LR sample shape: (frames, channels, patch, patch)."""
        return (self.frames, n_colors, self.patch, self.patch)

    def to_payload(self) -> dict:
        """JSON-encodable form for report/point payloads."""
        return {
            "name": self.name,
            "patch": self.patch,
            "scales": list(self.scales),
            "frames": self.frames,
            "frame_rate_fps": self.frame_rate_fps,
            "recurrent": self.recurrent,
        }


#: the paper's workload: single still images, one x2 head — the
#: degenerate spec every pre-existing digest and baseline lives under
IMAGE_SPEC = ScenarioSpec(name="image")

#: two upsampler heads (x2, x4) priced on one shared trunk
MULTISCALE_SPEC = ScenarioSpec(name="multiscale", scales=(2, 4))

#: the full head set: x2, x4, and x8 in one run
MULTISCALE8_SPEC = ScenarioSpec(name="multiscale8", scales=(2, 4, 8))

#: 8-frame clips with carried recurrent state, one x2 head
VIDEO_SPEC = ScenarioSpec(
    name="video", frames=8, frame_rate_fps=24.0, recurrent=True
)

SCENARIO_SPECS: tuple[ScenarioSpec, ...] = (
    IMAGE_SPEC, MULTISCALE_SPEC, MULTISCALE8_SPEC, VIDEO_SPEC,
)


def scenario_spec_by_name(name: str) -> ScenarioSpec:
    for spec in SCENARIO_SPECS:
        if spec.name.lower() == name.lower():
            return spec
    raise ConfigError(
        f"unknown workload scenario {name!r}; available: "
        f"{[s.name for s in SCENARIO_SPECS]}"
    )
