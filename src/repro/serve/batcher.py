"""Per-replica dynamic batching (max size + timeout, padding-aware).

The batcher is a pure, clock-driven state machine so its invariants can be
property-tested without the event engine:

* a dispatched batch never exceeds ``max_batch`` requests;
* once the oldest queued request has waited ``timeout_s``, the batch is
  *ready* — a correct driver (the replica server process) dispatches it at
  that instant, so no request waits longer than the timeout before its
  batch starts;
* requests leave in arrival order (global FIFO, hence FIFO within every
  request class).

Batches may mix request classes; the padding-aware cost model charges the
whole batch at the largest (patch, scale) it contains
(:meth:`repro.serve.costing.ServingCostModel.batch_latency`), which is
exactly what shape-padding a mixed batch onto one GPU launch costs.
Multi-scale serving (video mixes) sets ``mix_scales=False``: output
shapes of different upscale factors cannot pad together, so a dispatched
batch is the longest single-scale FIFO prefix — still FIFO, never
reordered, just cut at the first scale change.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.serve.workload import Request

#: tolerance when comparing simulation clocks to dispatch deadlines
_EPS = 1e-12


@dataclass(frozen=True)
class BatchingConfig:
    """Dynamic-batching knobs of one replica."""

    max_batch: int = 8
    timeout_s: float = 0.025
    #: False: a batch never mixes upscale factors (multi-scale serving);
    #: the dispatch is cut at the first scale change in FIFO order
    mix_scales: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.timeout_s < 0:
            raise ConfigError(f"timeout_s must be >= 0, got {self.timeout_s}")


class DynamicBatcher:
    """FIFO request queue that forms batches under (size, timeout) limits."""

    def __init__(self, config: BatchingConfig | None = None):
        self.config = config or BatchingConfig()
        self._queue: deque[tuple[Request, float]] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, request: Request, now: float) -> None:
        """Admit one request at simulation time ``now``."""
        if self._queue and now < self._queue[-1][1] - _EPS:
            raise ConfigError(
                f"batcher clock went backwards: {now} < {self._queue[-1][1]}"
            )
        self._queue.append((request, now))

    def oldest_enqueued_at(self) -> float | None:
        return self._queue[0][1] if self._queue else None

    def next_deadline(self) -> float | None:
        """Latest instant the head-of-line batch may dispatch (or None)."""
        if not self._queue:
            return None
        return self._queue[0][1] + self.config.timeout_s

    def ready(self, now: float) -> bool:
        """True when a batch must dispatch: full, or head timed out."""
        if not self._queue:
            return False
        if len(self._queue) >= self.config.max_batch:
            return True
        return now >= self.next_deadline() - _EPS

    def pop_batch(self, now: float) -> list[Request]:
        """Dispatch up to ``max_batch`` requests, oldest first.

        With ``mix_scales=False`` the batch stops at the first request
        whose upscale factor differs from the head's: those requests stay
        queued (in order) and form the next batch.
        """
        if not self._queue:
            raise ConfigError("pop_batch on an empty batcher")
        batch = []
        head_scale = self._queue[0][0].cls.scale
        while self._queue and len(batch) < self.config.max_batch:
            if (
                not self.config.mix_scales
                and self._queue[0][0].cls.scale != head_scale
            ):
                break
            batch.append(self._queue.popleft()[0])
        return batch

    def drain(self) -> list[Request]:
        """Remove and return every queued request (failover path)."""
        out = [req for req, _ in self._queue]
        self._queue.clear()
        return out
