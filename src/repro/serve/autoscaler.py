"""Reactive queue-depth autoscaling of the replica pool.

The autoscaler polls total queue depth every ``poll_interval_s`` of
simulated time and compares the *per-replica* depth against two
thresholds: above ``scale_up_at`` it adds one replica (paying the full
cold-start cost — checkpoint read plus weight broadcast — before the new
replica takes traffic), below ``scale_down_at`` it retires one idle
replica.  A shared ``cooldown_s`` between actions damps oscillation.

The decision function is pure (state in, action out), so it is unit
testable without the event engine and adds no nondeterminism to runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class AutoscalerConfig:
    """Reactive scaling thresholds and limits."""

    enabled: bool = True
    min_replicas: int = 1
    max_replicas: int = 8
    #: add a replica when queued requests per replica exceed this
    scale_up_at: float = 4.0
    #: retire one when queued requests per replica fall below this
    scale_down_at: float = 0.5
    poll_interval_s: float = 1.0
    cooldown_s: float = 3.0

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ConfigError(
                f"min_replicas must be >= 1, got {self.min_replicas}"
            )
        if self.max_replicas < self.min_replicas:
            raise ConfigError(
                f"max_replicas ({self.max_replicas}) must be >= "
                f"min_replicas ({self.min_replicas})"
            )
        if self.scale_down_at < 0 or self.scale_up_at <= self.scale_down_at:
            raise ConfigError(
                "need scale_up_at > scale_down_at >= 0, got "
                f"up={self.scale_up_at} down={self.scale_down_at}"
            )
        if self.poll_interval_s <= 0:
            raise ConfigError("poll_interval_s must be > 0")
        if self.cooldown_s < 0:
            raise ConfigError("cooldown_s must be >= 0")

    def decide(
        self,
        *,
        queued: int,
        replicas: int,
        now: float,
        last_action_at: float,
    ) -> int:
        """+1 grow, -1 shrink, 0 hold — pure function of observed state."""
        if not self.enabled or replicas < 1:
            return 0
        if now - last_action_at < self.cooldown_s:
            return 0
        per_replica = queued / replicas
        if per_replica > self.scale_up_at and replicas < self.max_replicas:
            return +1
        if per_replica < self.scale_down_at and replicas > self.min_replicas:
            return -1
        return 0
