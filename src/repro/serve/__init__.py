"""Simulated SR inference serving: what happens after training.

The paper trains EDSR at scale; this subsystem serves it.  Inference
requests flow through the same discrete-event machinery and calibrated
V100 cost model the training simulations run on:

* :mod:`repro.serve.workload` — seeded open-loop arrival traces
  (Poisson / diurnal / bursty / video sessions) over mixed patch sizes
  and scale factors;
* :mod:`repro.serve.batcher` — per-replica dynamic batching (max size +
  timeout, padding-aware, FIFO within class);
* :mod:`repro.serve.costing` — per-batch GPU latency from
  :mod:`repro.models.costing`, plus replica cold-start (checkpoint read
  + weight broadcast over the simulated interconnect);
* :mod:`repro.serve.router` — pluggable placement (round-robin,
  join-shortest-queue, least-loaded) with bounded queues and shedding;
* :mod:`repro.serve.autoscaler` — reactive queue-depth scaling;
* :mod:`repro.serve.slo` — the per-request outcome ledger: throughput,
  goodput, utilization, p50/p95/p99/p999 latency;
* :mod:`repro.serve.simulator` — the event-driven run loop, including
  replica failure -> watchdog declaration -> failover retry via
  :class:`~repro.faults.FaultPlan` / :class:`~repro.resilience.RecoveryPolicy`;
* :mod:`repro.serve.sweep` — cache-backed parallel policy sweeps
  (``repro serve --jobs N``);
* :mod:`repro.serve.functional` — a real EDSR checkpoint served through
  the actual tensor stack, bit-identical to offline inference, anchoring
  the simulated numbers to a real model.

Exposed via ``python -m repro serve``; see ``docs/serving.md``.
"""

from repro.serve.autoscaler import AutoscalerConfig
from repro.serve.batcher import BatchingConfig, DynamicBatcher
from repro.serve.costing import ServingCostModel, serving_model_config
from repro.serve.functional import FunctionalServer
from repro.serve.router import (
    POLICY_NAMES,
    ROUTING_POLICIES,
    AdmissionConfig,
    JoinShortestQueue,
    LeastLoaded,
    RoundRobin,
    make_routing_policy,
)
from repro.serve.simulator import ServeReport, ServeScenario, simulate_serve
from repro.serve.slo import QUANTILES, SLOConfig, SLOLedger, nearest_rank
from repro.serve.sweep import ServeJob, run_serve_jobs, serve_digest
from repro.serve.workload import (
    DEFAULT_MIX,
    VIDEO_MIX,
    WORKLOAD_KINDS,
    Request,
    RequestClass,
    WorkloadConfig,
    generate_arrivals,
)

__all__ = [
    "AutoscalerConfig",
    "BatchingConfig",
    "DynamicBatcher",
    "ServingCostModel",
    "serving_model_config",
    "FunctionalServer",
    "POLICY_NAMES",
    "ROUTING_POLICIES",
    "AdmissionConfig",
    "RoundRobin",
    "JoinShortestQueue",
    "LeastLoaded",
    "make_routing_policy",
    "ServeScenario",
    "ServeReport",
    "simulate_serve",
    "SLOConfig",
    "SLOLedger",
    "QUANTILES",
    "nearest_rank",
    "ServeJob",
    "run_serve_jobs",
    "serve_digest",
    "Request",
    "RequestClass",
    "WorkloadConfig",
    "generate_arrivals",
    "DEFAULT_MIX",
    "VIDEO_MIX",
    "WORKLOAD_KINDS",
]
