"""Policy sweeps: independent serving runs across worker processes.

Mirrors :mod:`repro.perf.parallel` for the serving tier: a sweep is a bag
of independent :class:`ServeJob`\\ s (scenario x duration x seed x fault
plan), fanned out over a :class:`~concurrent.futures.ProcessPoolExecutor`
and merged in submission order, with the content-addressed result cache
consulted and populated in the parent process only.

The digest preimage is keyed ``"serve-point"`` (vs the training sweeps'
``"scaling-point"``) and covers every serving knob — workload, batching,
routing policy, admission, autoscaler, SLO, model, duration, seed, env
knobs, fault plan, recovery policy, and the cache version salt — so a
cached serving result can never alias a training result or a run with any
knob changed.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError
from repro.perf.cache import ResultCache
from repro.perf.digest import canonical_digest, env_knobs
from repro.serve.simulator import ServeReport, ServeScenario, simulate_serve


@dataclass(frozen=True)
class ServeJob:
    """One serving run (all-frozen fields, cheap to pickle)."""

    scenario: ServeScenario
    duration_s: float = 60.0
    seed: int = 0
    fault_plan: object | None = None
    recovery: object | None = None
    #: "exact" | "fast" — folded into the digest: fast mode is proven
    #: bit-identical by the equivalence suite, but a cached result must
    #: still say which engine produced it so a regression is attributable
    engine_mode: str = "exact"


def serve_digest(job: ServeJob) -> str:
    """Content address of the report this job would produce."""
    from repro.comm.selection import active_table_digests

    return canonical_digest(
        {
            "kind": "serve-point",
            "scenario": job.scenario,
            "duration_s": job.duration_s,
            "seed": job.seed,
            "env": env_knobs(),
            "fault_plan": job.fault_plan,
            "recovery": job.recovery,
            "comm_tables": active_table_digests(),
            "engine_mode": job.engine_mode,
        }
    )


def _execute(job: ServeJob) -> ServeReport:
    """Worker entry point (module level so it pickles under spawn)."""
    report = simulate_serve(
        job.scenario,
        duration_s=job.duration_s,
        seed=job.seed,
        fault_plan=job.fault_plan,
        recovery=job.recovery,
        engine_mode=job.engine_mode,
    )
    # strip live objects: sweep results are summaries, identical whether
    # they came from a worker pickle, an inline run, or the cache
    report.ledger = None
    report.trace = None
    return report


def run_serve_jobs(
    jobs: Sequence[ServeJob],
    *,
    workers: int | None = None,
    cache: ResultCache | None = None,
) -> list[ServeReport]:
    """Run every job; results come back in input order regardless of
    worker completion order, and cached reports are byte-identical to
    freshly simulated ones."""
    workers = max(1, os.cpu_count() or 1) if workers is None else workers
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")

    results: dict[int, ServeReport] = {}
    digests: dict[int, str] = {}
    pending: list[tuple[int, ServeJob]] = []
    for i, job in enumerate(jobs):
        if cache is not None and cache.enabled:
            digest = serve_digest(job)
            digests[i] = digest
            hit = cache.get(digest)
            if hit is not None:
                results[i] = ServeReport.from_payload(hit)
                continue
        pending.append((i, job))

    if pending:
        if workers == 1 or len(pending) == 1:
            computed = [_execute(job) for _, job in pending]
        else:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(pending))
            ) as pool:
                computed = list(pool.map(_execute, [j for _, j in pending]))
        for (i, _job), report in zip(pending, computed):
            results[i] = report
            if cache is not None and cache.enabled:
                cache.put(digests[i], report.to_payload())

    return [results[i] for i in range(len(jobs))]
