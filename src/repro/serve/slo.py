"""SLO accounting: the ledger every request must pass through.

Every request in the arrival trace ends the run in exactly one terminal
state — **completed** (served, with a recorded latency) or **shed**
(rejected at admission or unsalvageable after failover).  Retries after a
replica failure are recorded as events on the way to one of those states.
The invariant ``completed + shed == arrived`` is asserted at finalize
time, which is what makes "no request silently dropped" a checked
property rather than a hope.

The summary payload is plain JSON (sorted keys, no object graphs), so it
travels unchanged through the perf result cache and the parallel sweep
merge, and two payloads are comparable with ``==`` — the determinism
tests' definition of "identical SLO ledger".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError, SimulationError
from repro.serve.workload import Request

#: reported tail quantiles (label -> fraction)
QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999))


@dataclass(frozen=True)
class SLOConfig:
    """The latency objective goodput is measured against."""

    #: a request "meets SLO" when served within this much of its arrival
    target_latency_s: float = 0.25
    #: video playout delay: frame k of a session plays at
    #: ``first_frame_arrival + jitter_buffer_s + k / fps``; a frame not
    #: served by its playout instant is a rebuffer and stalls the stream
    jitter_buffer_s: float = 0.25

    def __post_init__(self) -> None:
        if self.target_latency_s <= 0:
            raise ConfigError(
                f"target_latency_s must be > 0, got {self.target_latency_s}"
            )
        if self.jitter_buffer_s <= 0:
            raise ConfigError(
                f"jitter_buffer_s must be > 0, got {self.jitter_buffer_s}"
            )


def nearest_rank(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile (deterministic, no interpolation)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


class SLOLedger:
    """Per-request outcome journal plus aggregate serving metrics."""

    def __init__(self, slo: SLOConfig | None = None):
        self.slo = slo or SLOConfig()
        #: rid -> (class name, arrival, outcome, completion, retries)
        self.records: dict[int, dict] = {}
        self.retry_events = 0
        self.rehomes = 0
        self.cold_starts = 0
        self.cold_start_s = 0.0
        self.detections = 0
        self._busy_s: dict[int, float] = {}
        self._alive_s: dict[int, float] = {}
        self._finalized: dict | None = None

    # -- request lifecycle ---------------------------------------------------
    def note_arrival(self, request: Request) -> None:
        if request.rid in self.records:
            raise SimulationError(f"request {request.rid} arrived twice")
        rec = {
            "class": request.cls.name,
            "arrival": request.arrival,
            "outcome": "pending",
            "completion": None,
            "retries": 0,
        }
        if request.session is not None:
            rec["session"] = request.session
            rec["frame"] = request.frame
            rec["deadline"] = request.cls.deadline_s
            rec["fps"] = request.cls.frame_rate_fps
        self.records[request.rid] = rec

    def note_retry(self, request: Request, now: float) -> None:
        self.records[request.rid]["retries"] += 1
        self.retry_events += 1

    def note_rehome(self, session: int) -> None:
        """A video session moved to a new home replica (failover/retire)."""
        self.rehomes += 1

    def note_completed(
        self, request: Request, now: float, *, replica: int | None = None
    ) -> None:
        rec = self.records[request.rid]
        if rec["outcome"] != "pending":
            raise SimulationError(
                f"request {request.rid} already {rec['outcome']}"
            )
        rec["outcome"] = "completed"
        rec["completion"] = now
        rec["replica"] = replica

    def note_shed(self, request: Request, now: float) -> None:
        rec = self.records[request.rid]
        if rec["outcome"] != "pending":
            raise SimulationError(
                f"request {request.rid} already {rec['outcome']}"
            )
        rec["outcome"] = "shed"
        rec["completion"] = now

    # -- infrastructure events ------------------------------------------------
    def note_cold_start(self, cost_s: float) -> None:
        self.cold_starts += 1
        self.cold_start_s += cost_s

    def note_detection(self) -> None:
        self.detections += 1

    def note_replica_usage(self, replica_id: int, busy_s: float, alive_s: float) -> None:
        self._busy_s[replica_id] = self._busy_s.get(replica_id, 0.0) + busy_s
        self._alive_s[replica_id] = self._alive_s.get(replica_id, 0.0) + alive_s

    # -- aggregation -----------------------------------------------------------
    def outcome_counts(self) -> dict[str, int]:
        counts = {"completed": 0, "shed": 0, "pending": 0}
        for rec in self.records.values():
            counts[rec["outcome"]] += 1
        return counts

    def latencies(self) -> list[float]:
        """Sorted completed-request latencies."""
        return sorted(
            rec["completion"] - rec["arrival"]
            for rec in self.records.values()
            if rec["outcome"] == "completed"
        )

    def finalize(self, makespan_s: float) -> dict:
        """Close the ledger and compute the summary payload.

        Raises when any request is still pending — the simulator must
        resolve every arrival before finalizing.
        """
        counts = self.outcome_counts()
        if counts["pending"]:
            raise SimulationError(
                f"{counts['pending']} request(s) left pending at finalize"
            )
        if makespan_s <= 0:
            makespan_s = 1.0
        lats = self.latencies()
        within = sum(1 for l in lats if l <= self.slo.target_latency_s)
        retried_requests = sum(
            1 for rec in self.records.values() if rec["retries"] > 0
        )
        busy = sum(self._busy_s.values())
        alive = sum(self._alive_s.values())
        payload = {
            "arrived": len(self.records),
            "completed": counts["completed"],
            "shed": counts["shed"],
            "retried_requests": retried_requests,
            "retry_events": self.retry_events,
            "throughput_rps": counts["completed"] / makespan_s,
            "goodput_rps": within / makespan_s,
            "slo_target_ms": self.slo.target_latency_s * 1e3,
            "slo_attainment": within / counts["completed"]
            if counts["completed"]
            else 1.0,
            "utilization": busy / alive if alive > 0 else 0.0,
            "cold_starts": self.cold_starts,
            "cold_start_s": self.cold_start_s,
            "detections": self.detections,
            "makespan_s": makespan_s,
            "latency_ms": {
                label: nearest_rank(lats, q) * 1e3 for label, q in QUANTILES
            },
            "mean_latency_ms": (sum(lats) / len(lats)) * 1e3 if lats else 0.0,
            "by_class": self._by_class(),
        }
        video = self._video_summary()
        if video is not None:
            payload["video"] = video
        self._finalized = payload
        return payload

    def _video_summary(self) -> dict | None:
        """Jitter-buffer SLO over the session records, or None.

        The key is present only when the trace contained video sessions,
        so single-image summaries (and their pinned baselines) are
        byte-identical to the pre-video ledger.
        """
        sessions: dict[int, list[dict]] = {}
        for rec in self.records.values():
            if "session" in rec:
                sessions.setdefault(rec["session"], []).append(rec)
        if not sessions:
            return None
        frames_arrived = frames_completed = frames_shed = 0
        late = 0
        rebuffers = 0
        frame_lats: list[float] = []
        for sid in sorted(sessions):
            recs = sorted(sessions[sid], key=lambda r: r["frame"])
            if [r["frame"] for r in recs] != list(range(len(recs))):
                raise SimulationError(
                    f"session {sid} frames are not a contiguous 0..n-1 run"
                )
            completed = sum(1 for r in recs if r["outcome"] == "completed")
            frames_arrived += len(recs)
            frames_completed += completed
            frames_shed += len(recs) - completed
            # playout model: frame k is due jitter_buffer_s + k/fps after
            # the stream started; a late frame rebuffers and shifts the
            # rest of the playout schedule by its lateness.  Shed frames
            # are dropped from playout (no stall).
            start = recs[0]["arrival"]
            offset = self.slo.jitter_buffer_s
            for r in recs:
                if r["outcome"] != "completed":
                    continue
                lat = r["completion"] - r["arrival"]
                frame_lats.append(lat)
                deadline = (
                    r["deadline"]
                    if r["deadline"] is not None
                    else self.slo.target_latency_s
                )
                if lat > deadline:
                    late += 1
                scheduled = start + offset + r["frame"] / r["fps"]
                if r["completion"] > scheduled:
                    rebuffers += 1
                    offset += r["completion"] - scheduled
        frame_lats.sort()
        return {
            "sessions": len(sessions),
            "frames_arrived": frames_arrived,
            "frames_completed": frames_completed,
            "frames_shed": frames_shed,
            "late_frame_ratio": late / frames_completed
            if frames_completed
            else 0.0,
            "rebuffers": rebuffers,
            "rehomes": self.rehomes,
            "frame_latency_ms": {
                "p50": nearest_rank(frame_lats, 0.50) * 1e3,
                "p99": nearest_rank(frame_lats, 0.99) * 1e3,
            },
            "mean_frame_latency_ms": (
                (sum(frame_lats) / len(frame_lats)) * 1e3 if frame_lats else 0.0
            ),
        }

    def _by_class(self) -> dict[str, dict]:
        per: dict[str, dict] = {}
        for rec in self.records.values():
            entry = per.setdefault(
                rec["class"], {"arrived": 0, "completed": 0, "shed": 0}
            )
            entry["arrived"] += 1
            entry[rec["outcome"]] += 1
        return {name: per[name] for name in sorted(per)}

    @property
    def summary(self) -> dict:
        if self._finalized is None:
            raise SimulationError("ledger not finalized yet")
        return self._finalized
