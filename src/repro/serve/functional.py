"""Functional serving path: a real EDSR behind the simulated numbers.

The simulator prices serving with the analytic cost model; this module
anchors it to reality.  A :class:`FunctionalServer` loads an actual EDSR
checkpoint (written/read through :mod:`repro.trainer.checkpoint`, the same
serialization the resilience layer restarts from) and serves batches
through the numpy tensor stack exactly the way a replica would: requests
are grouped by LR shape, each group runs as one fused forward pass, and
the outputs are scattered back in request order.

The correctness contract — enforced by the equivalence tests — is that
serving is *bit-identical* to offline inference: for every image,
``server.serve_batch([...])[i] == model.upscale(image)`` exactly.  Batch
grouping never pads across shapes precisely so this holds; padding is a
timing concept (the cost model charges mixed batches at the largest
shape), not a numerics one.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.models.edsr import EDSR, EDSR_TINY, EDSRConfig


class FunctionalServer:
    """Shape-grouped batching inference over a real EDSR instance."""

    def __init__(self, model: EDSR):
        self.model = model
        self.batches_served = 0
        self.requests_served = 0

    @classmethod
    def from_checkpoint(
        cls, path: str, config: EDSRConfig = EDSR_TINY
    ) -> "FunctionalServer":
        """Bring a replica online from a training checkpoint (the weight
        load every simulated cold start charges for)."""
        from repro.trainer.checkpoint import load_checkpoint

        model = EDSR(config)
        load_checkpoint(model, path)
        return cls(model)

    def offline(self, image: np.ndarray) -> np.ndarray:
        """Reference path: plain single-image inference."""
        return self.model.upscale(image)

    def serve_batch(self, images: list[np.ndarray]) -> list[np.ndarray]:
        """Serve one dispatched batch; outputs in request order.

        Same-shaped requests share one fused forward pass; distinct
        shapes run as separate launches (no cross-shape padding, so every
        output is bit-identical to offline inference).
        """
        if not images:
            raise ConfigError("serve_batch of an empty batch")
        for image in images:
            if image.ndim != 3:
                raise ConfigError(
                    f"expected (C, H, W) images, got shape {image.shape}"
                )
        groups: dict[tuple, list[int]] = {}
        for i, image in enumerate(images):
            groups.setdefault(tuple(image.shape), []).append(i)
        outputs: list[np.ndarray | None] = [None] * len(images)
        for indices in groups.values():
            stacked = np.stack([images[i] for i in indices])
            upscaled = self.model.upscale(stacked)
            for slot, i in enumerate(indices):
                outputs[i] = upscaled[slot]
        self.batches_served += 1
        self.requests_served += len(images)
        return outputs  # type: ignore[return-value]
