"""Serving-side cost model: batch latency and replica cold-start.

Per-batch GPU latency comes from the same calibrated V100 throughput model
the trainer uses (:mod:`repro.models.costing`), evaluated forward-only.
Batches may mix patch sizes and upscale factors; the smaller patches are
padded up to the largest shape in the batch before the fused launch, so
the whole batch is charged at the maximum (patch, scale) it contains —
the padding-aware rule the batcher's mixing behaviour is priced under.

Replica cold-start reuses the resilience layer's storage model: bringing
a new replica online reads the serving checkpoint from the parallel
filesystem (:meth:`repro.resilience.CheckpointPolicy.read_cost` over the
model's parameter bytes — the same cost the trainer pays on restart) and
then broadcasts the weights to the replica's GPU over the simulated
inter-node interconnect.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable

from repro.errors import ConfigError
from repro.hardware.specs import ClusterSpec, GpuSpec, LASSEN
from repro.models.costing import ModelCostModel, ThroughputModel
from repro.models.edsr import (
    EDSR_BASELINE,
    EDSR_PAPER,
    EDSR_PAPER_TEXT,
    EDSR_TINY,
    EDSRConfig,
)
from repro.resilience.checkpoint import CheckpointPolicy
from repro.serve.workload import Request, RequestClass

_EDSR_CONFIGS: dict[str, EDSRConfig] = {
    c.name: c for c in (EDSR_PAPER, EDSR_BASELINE, EDSR_PAPER_TEXT, EDSR_TINY)
}


def serving_model_config(model: str) -> EDSRConfig:
    """The EDSR preset behind a servable model name."""
    try:
        return _EDSR_CONFIGS[model]
    except KeyError:
        raise ConfigError(
            f"unknown servable model {model!r}; available: "
            f"{sorted(_EDSR_CONFIGS)}"
        ) from None


class ServingCostModel:
    """Maps (model, GPU, batch composition) to per-batch latency."""

    def __init__(
        self,
        model: str = "edsr-paper",
        *,
        gpu: GpuSpec | None = None,
        cluster: ClusterSpec | None = None,
    ):
        self.model = model
        self.base_config = serving_model_config(model)
        self.cluster = cluster or LASSEN
        self.gpu = gpu or self.cluster.node.gpu
        self._throughput: dict[tuple[int, int], ThroughputModel] = {}

    # -- per-shape throughput models ----------------------------------------
    def _model_for(self, patch: int, scale: int) -> ThroughputModel:
        key = (patch, scale)
        tm = self._throughput.get(key)
        if tm is None:
            config = replace(
                self.base_config,
                name=f"{self.base_config.name}@{patch}x{scale}",
                scale=scale,
            )
            cost = ModelCostModel.for_edsr(config, patch=patch)
            tm = ThroughputModel(cost, self.gpu)
            self._throughput[key] = tm
        return tm

    @property
    def param_bytes(self) -> int:
        # parameter count does not depend on the patch size
        return self._model_for(48, self.base_config.scale).cost.param_bytes

    # -- latency ------------------------------------------------------------
    def request_latency(self, cls: RequestClass) -> float:
        """Single-request (batch-of-one) latency; the router's load unit."""
        return self._model_for(cls.patch, cls.scale).inference_time(1)

    def batch_latency(self, batch: Iterable[Request]) -> float:
        """Padding-aware latency of one fused batch launch."""
        requests = list(batch)
        if not requests:
            raise ConfigError("batch_latency of an empty batch")
        patch = max(r.cls.patch for r in requests)
        scale = max(r.cls.scale for r in requests)
        return self._model_for(patch, scale).inference_time(len(requests))

    # -- cold start ---------------------------------------------------------
    def cold_start_s(self, checkpoint: CheckpointPolicy) -> float:
        """Checkpoint read + weight broadcast to bring one replica online.

        The broadcast is priced by the communication layer's shared
        cold-start helper (one α-β IB push per replica) — the same
        envelope this method charged inline before ``repro.comm`` existed.
        """
        from repro.comm.cost import weight_broadcast_time

        nbytes = self.param_bytes
        read = checkpoint.read_cost(nbytes)
        return read + weight_broadcast_time(self.cluster, nbytes)
