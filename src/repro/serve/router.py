"""Front-end routing: pluggable placement + admission control.

A routing policy picks the replica for each incoming request among the
replicas that are *routable* — warm, not retired, not yet declared dead
(a dead-but-undeclared replica still receives traffic: the router cannot
know until the watchdog declares the failure, which is exactly the
detection-latency window the resilience layer models) — and whose bounded
queue still has room.  When no routable replica has room, the request is
shed at admission (load-shedding backpressure) and recorded in the SLO
ledger; nothing is silently dropped.

Policies are deterministic: ties break toward the lowest replica id, and
round-robin keeps an explicit cursor, so two runs of the same scenario
route identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.errors import ConfigError


@dataclass(frozen=True)
class AdmissionConfig:
    """Bounded per-replica queue; arrivals beyond it are shed."""

    queue_capacity: int = 64

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ConfigError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )


class RoutableReplica(Protocol):
    """What a routing policy may observe about a replica."""

    id: int

    def queue_len(self) -> int: ...

    def backlog_s(self, now: float) -> float: ...


class RoundRobin:
    """Cycle through routable replicas in id order."""

    name = "rr"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(
        self, replicas: Sequence[RoutableReplica], now: float
    ) -> RoutableReplica | None:
        if not replicas:
            return None
        ordered = sorted(replicas, key=lambda r: r.id)
        pick = ordered[self._cursor % len(ordered)]
        self._cursor += 1
        return pick


class JoinShortestQueue:
    """Route to the replica with the fewest queued requests."""

    name = "jsq"

    def choose(
        self, replicas: Sequence[RoutableReplica], now: float
    ) -> RoutableReplica | None:
        if not replicas:
            return None
        return min(replicas, key=lambda r: (r.queue_len(), r.id))


class LeastLoaded:
    """Route on estimated backlog seconds (queued work + residual busy)."""

    name = "least-loaded"

    def choose(
        self, replicas: Sequence[RoutableReplica], now: float
    ) -> RoutableReplica | None:
        if not replicas:
            return None
        return min(replicas, key=lambda r: (r.backlog_s(now), r.id))


#: canonical names plus common aliases
ROUTING_POLICIES = {
    "rr": RoundRobin,
    "round-robin": RoundRobin,
    "jsq": JoinShortestQueue,
    "join-shortest-queue": JoinShortestQueue,
    "least-loaded": LeastLoaded,
}

#: the canonical spelling of each distinct policy
POLICY_NAMES = ("rr", "jsq", "least-loaded")


def make_routing_policy(name: str):
    try:
        return ROUTING_POLICIES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown routing policy {name!r}; available: {sorted(ROUTING_POLICIES)}"
        ) from None
