"""Discrete-event SR inference-serving simulation.

Runs one serving scenario — workload, batching, routing, admission,
autoscaling, SLO — on the event engine that powers the training
simulations, against the same calibrated V100 cost model.  The moving
parts:

* an **arrival process** replays the pre-generated trace into the router;
* each **replica** runs a server process: dynamic batcher in front, one
  fused forward launch per batch, per-batch latency from
  :class:`~repro.serve.costing.ServingCostModel`;
* the **router** places each request on a routable replica (policy
  pluggable) or sheds it when every bounded queue is full;
* the **autoscaler** grows/shrinks the pool against queue depth, paying
  checkpoint-read + weight-broadcast cold start for every new replica;
* **failures** come from an ordinary :class:`~repro.faults.FaultPlan`
  (``RankFailure.rank`` is the replica id): a dead replica black-holes
  its queue until the :class:`~repro.resilience.HeartbeatConfig` watchdog
  declares it, then every orphaned request is retried through the router
  (failover) and, under ``RecoveryPolicy.restart``, a replacement replica
  is spawned.

Everything is deterministic: the trace is seed-derived, the event heap is
totally ordered, policies break ties by replica id, and the run ends when
every arrival is resolved — so two runs of the same scenario produce
byte-identical SLO ledgers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigError, SimulationError
from repro.faults import FaultInjector, FaultPlan
from repro.resilience import RESTART_FROM_CHECKPOINT, RecoveryPolicy
from repro.serve.autoscaler import AutoscalerConfig
from repro.serve.batcher import BatchingConfig, DynamicBatcher
from repro.serve.costing import ServingCostModel
from repro.serve.router import AdmissionConfig, make_routing_policy
from repro.serve.slo import SLOConfig, SLOLedger
from repro.serve.workload import Request, WorkloadConfig, generate_arrivals
from repro.sim import Environment, Interrupt

# replica lifecycle states
WARMING = "warming"
HEALTHY = "healthy"
DEAD = "dead"
RETIRED = "retired"


@dataclass(frozen=True)
class ServeScenario:
    """Frozen, digest-able description of one serving experiment."""

    name: str = "default"
    model: str = "edsr-paper"
    routing: str = "jsq"
    initial_replicas: int = 2
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    batching: BatchingConfig = field(default_factory=BatchingConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    slo: SLOConfig = field(default_factory=SLOConfig)
    #: pin every frame of a video session to one replica (recurrent
    #: serving state lives on the replica); implied by streaming classes
    session_affinity: bool = False

    def __post_init__(self) -> None:
        if self.initial_replicas < 1:
            raise ConfigError(
                f"initial_replicas must be >= 1, got {self.initial_replicas}"
            )

    @property
    def affinity_active(self) -> bool:
        return self.session_affinity or any(
            c.frames > 1 for c in self.workload.classes
        )


@dataclass
class ServeReport:
    """Result of one serving run (the ledger summary is the payload)."""

    scenario: str
    policy: str
    model: str
    duration_s: float
    seed: int
    summary: dict
    #: live objects, only present on inline (non-cached) runs
    ledger: SLOLedger | None = None
    trace: list | None = None

    def to_payload(self) -> dict:
        return {
            "kind": "serve-report",
            "scenario": self.scenario,
            "policy": self.policy,
            "model": self.model,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "summary": self.summary,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ServeReport":
        return cls(
            scenario=payload["scenario"],
            policy=payload["policy"],
            model=payload["model"],
            duration_s=payload["duration_s"],
            seed=payload["seed"],
            summary=payload["summary"],
        )

    def lines(self) -> list[str]:
        """Human-readable itemization for reports and the CLI."""
        s = self.summary
        lat = s["latency_ms"]
        return [
            f"requests           {s['arrived']:6d} arrived, "
            f"{s['completed']} completed, {s['shed']} shed, "
            f"{s['retried_requests']} retried",
            f"throughput         {s['throughput_rps']:10.2f} req/s "
            f"(goodput {s['goodput_rps']:.2f} req/s, "
            f"SLO attainment {s['slo_attainment']:.1%})",
            f"latency (ms)       p50 {lat['p50']:.2f}  p95 {lat['p95']:.2f}  "
            f"p99 {lat['p99']:.2f}  p999 {lat['p999']:.2f}",
            f"utilization        {s['utilization']:10.1%}",
            f"elasticity         {s['cold_starts']} cold start(s) "
            f"({s['cold_start_s']:.3f} s), {s['detections']} failure(s) "
            f"detected",
        ] + self._video_lines()

    def _video_lines(self) -> list[str]:
        v = self.summary.get("video")
        if v is None:
            return []
        flat = v["frame_latency_ms"]
        return [
            f"video sessions     {v['sessions']:6d} streams, "
            f"{v['rehomes']} re-home(s)",
            f"frames             {v['frames_arrived']:6d} arrived, "
            f"{v['frames_completed']} completed, {v['frames_shed']} shed",
            f"jitter buffer      late-frame ratio {v['late_frame_ratio']:.1%}, "
            f"{v['rebuffers']} rebuffer(s)",
            f"frame latency (ms) p50 {flat['p50']:.2f}  p99 {flat['p99']:.2f}",
        ]


class _Replica:
    """Mutable per-replica simulation state."""

    __slots__ = (
        "id", "state", "retiring", "declared", "batcher", "in_flight",
        "wake", "proc", "busy_s", "queued_work_s", "busy_until",
        "warmed_at", "ended_at",
    )

    def __init__(self, rid: int, batching: BatchingConfig):
        self.id = rid
        self.state = WARMING
        self.retiring = False
        self.declared = False
        self.batcher = DynamicBatcher(batching)
        self.in_flight: list[Request] = []
        self.wake = None
        self.proc = None
        self.busy_s = 0.0
        self.queued_work_s = 0.0
        self.busy_until = 0.0
        self.warmed_at: float | None = None
        self.ended_at: float | None = None

    # the RoutableReplica protocol ------------------------------------------
    def queue_len(self) -> int:
        return len(self.batcher)

    def backlog_s(self, now: float) -> float:
        return self.queued_work_s + max(0.0, self.busy_until - now)

    @property
    def accepting(self) -> bool:
        """Routable: not retired/retiring, not *declared* dead.

        A dead-but-undeclared replica still takes traffic — the router
        cannot know better until the watchdog speaks.  That queue is
        failed over at declaration time.
        """
        return (
            not self.retiring
            and not self.declared
            and self.state in (HEALTHY, DEAD)
        )


class _ServeSimulation:
    """One scenario wired onto an :class:`Environment`."""

    def __init__(
        self,
        scenario: ServeScenario,
        *,
        duration_s: float,
        seed: int,
        fault_plan: FaultPlan | None,
        recovery: RecoveryPolicy,
        collect_trace: bool,
        engine_mode: str = "exact",
    ):
        self.scenario = scenario
        self.duration_s = float(duration_s)
        self.seed = int(seed)
        self.recovery = recovery
        self.env = Environment()
        self.cost = ServingCostModel(scenario.model)
        self.policy = make_routing_policy(scenario.routing)
        self.ledger = SLOLedger(scenario.slo)
        self.injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        self.requests = generate_arrivals(
            scenario.workload, self.duration_s, self.seed,
            engine_mode=engine_mode,
        )
        self.replicas: dict[int, _Replica] = {}
        #: session id -> home replica id (affinity routing state)
        self.session_home: dict[int, int] = {}
        self._affinity = scenario.affinity_active
        self._next_rid = 0
        self.outstanding = 0
        self.arrivals_done = False
        self.done = self.env.event("serve-done")
        # bail-out horizon for the autoscaler loop: far beyond any sane
        # drain time, so a stuck request surfaces as DeadlockError
        self._hard_deadline = self.duration_s * 4.0 + 300.0
        self.trace: list | None = [] if collect_trace else None

    # -- tracing ---------------------------------------------------------------
    def _trace(self, name, *, ph="i", ts=None, dur=0.0, tid="router", args=None):
        if self.trace is None:
            return
        from repro.profiling.trace_export import TraceEvent

        self.trace.append(
            TraceEvent(
                name=name,
                ph=ph,
                ts_us=(self.env.now if ts is None else ts) * 1e6,
                dur_us=dur * 1e6,
                pid="repro-serve",
                tid=tid,
                cat="serve",
                args=args,
            )
        )

    # -- lifecycle -------------------------------------------------------------
    def spawn_replica(self, *, cold_start_s: float = 0.0, reason: str = "initial") -> _Replica:
        rep = _Replica(self._next_rid, self.scenario.batching)
        self._next_rid += 1
        self.replicas[rep.id] = rep
        rep.proc = self.env.process(
            self._replica_proc(rep, cold_start_s), name=f"replica-{rep.id}"
        )
        if cold_start_s > 0:
            self._trace(
                f"cold-start ({reason})", ph="X", dur=cold_start_s,
                tid=f"replica-{rep.id}",
            )
        return rep

    def _replica_proc(self, rep: _Replica, cold_start_s: float):
        env = self.env
        try:
            if cold_start_s > 0:
                yield env.timeout(cold_start_s)
            rep.state = HEALTHY
            rep.warmed_at = env.now
            while True:
                if rep.retiring and not len(rep.batcher):
                    break
                if not len(rep.batcher):
                    rep.wake = env.event(f"wake:replica-{rep.id}")
                    yield rep.wake
                    rep.wake = None
                    continue
                if not rep.batcher.ready(env.now):
                    deadline = rep.batcher.next_deadline()
                    rep.wake = env.event(f"wake:replica-{rep.id}")
                    yield env.any_of(
                        [rep.wake, env.timeout(max(0.0, deadline - env.now))]
                    )
                    rep.wake = None
                    continue
                batch = rep.batcher.pop_batch(env.now)
                for req in batch:
                    rep.queued_work_s = max(
                        0.0,
                        rep.queued_work_s - self.cost.request_latency(req.cls),
                    )
                rep.in_flight = batch
                latency = self.cost.batch_latency(batch)
                start = env.now
                rep.busy_until = start + latency
                yield env.timeout(latency)
                rep.busy_s += latency
                self._trace(
                    f"batch[{len(batch)}]", ph="X", ts=start, dur=latency,
                    tid=f"replica-{rep.id}",
                    args={"requests": len(batch)},
                )
                done_batch, rep.in_flight = rep.in_flight, []
                for req in done_batch:
                    self.ledger.note_completed(req, env.now, replica=rep.id)
                    self._resolve_one()
            rep.state = RETIRED
            rep.ended_at = env.now
        except Interrupt:
            # killed by the failure process; orphans are failed over at
            # declaration time
            return

    # -- routing ---------------------------------------------------------------
    def _routable(self) -> list[_Replica]:
        cap = self.scenario.admission.queue_capacity
        return [
            rep
            for rep in self.replicas.values()
            if rep.accepting and len(rep.batcher) < cap
        ]

    def _shed(self, request: Request) -> None:
        self.ledger.note_shed(request, self.env.now)
        self._trace(
            "shed", args={"rid": request.rid, "class": request.cls.name}
        )
        self._resolve_one()

    def _enqueue(self, target: _Replica, request: Request) -> None:
        target.batcher.enqueue(request, self.env.now)
        target.queued_work_s += self.cost.request_latency(request.cls)
        if target.wake is not None and not target.wake.triggered:
            target.wake.succeed()

    def route(self, request: Request) -> None:
        """Place (or shed) one request at the current instant."""
        if self._affinity and request.session is not None:
            self._route_session(request)
            return
        target = self.policy.choose(self._routable(), self.env.now)
        if target is None:
            self._shed(request)
            return
        self._enqueue(target, request)

    def _route_session(self, request: Request) -> None:
        """Affinity routing: every frame of a session lands on its home.

        A full-but-alive home sheds the frame rather than splitting the
        stream (the recurrent serving state lives on the home replica);
        the session is re-homed only when its home stops accepting —
        declared dead, retiring, or retired — and the whole remainder of
        the stream follows to the new home.
        """
        sid = request.session
        cap = self.scenario.admission.queue_capacity
        home_id = self.session_home.get(sid)
        home = self.replicas.get(home_id) if home_id is not None else None
        if home is not None and home.accepting:
            if len(home.batcher) < cap:
                self._enqueue(home, request)
            else:
                self._shed(request)
            return
        target = self.policy.choose(self._routable(), self.env.now)
        if target is None:
            self._shed(request)
            return
        if home_id is not None:
            self.ledger.note_rehome(sid)
            self._trace(
                "session-rehome",
                args={"session": sid, "from": home_id, "to": target.id},
            )
        self.session_home[sid] = target.id
        self._enqueue(target, request)

    # -- processes -------------------------------------------------------------
    def _arrivals_proc(self):
        env = self.env
        for request in self.requests:
            if request.arrival > env.now:
                yield env.timeout(request.arrival - env.now)
            self.outstanding += 1
            self.ledger.note_arrival(request)
            self.route(request)
        self.arrivals_done = True
        self._maybe_done()

    def _resolve_one(self) -> None:
        self.outstanding -= 1
        self._maybe_done()

    def _maybe_done(self) -> None:
        if (
            self.arrivals_done
            and self.outstanding == 0
            and not self.done.triggered
        ):
            self.done.succeed()

    def _failure_proc(self):
        env = self.env
        failures = sorted(
            self.injector.plan.failures, key=lambda f: (f.time, f.rank)
        )
        for spec in failures:
            if spec.time > env.now:
                yield env.timeout(spec.time - env.now)
            rep = self.replicas.get(spec.rank)
            if rep is None or rep.state in (DEAD, RETIRED):
                continue
            rep.state = DEAD
            rep.ended_at = env.now
            if rep.proc is not None and rep.proc.is_alive:
                rep.proc.interrupt("rank-failure")
            self.injector.record(
                "rank-failure", env.now, rank=rep.id,
                detail=f"replica-{rep.id}",
            )
            self._trace("replica-failed", tid=f"replica-{rep.id}")
            declared_at = self.recovery.heartbeat.declared_at(spec.time)
            env.process(
                self._declare_proc(rep, declared_at),
                name=f"declare-{rep.id}",
            )

    def _declare_proc(self, rep: _Replica, declared_at: float):
        env = self.env
        if declared_at > env.now:
            yield env.timeout(declared_at - env.now)
        rep.declared = True
        self.ledger.note_detection()
        if self.injector is not None:
            self.injector.record(
                "replica-dead", env.now, rank=rep.id,
                detail=f"declared after "
                       f"{env.now - (rep.ended_at or env.now):.4f}s",
            )
        self._trace("replica-declared-dead", tid=f"replica-{rep.id}")
        orphans = rep.in_flight + rep.batcher.drain()
        rep.in_flight = []
        rep.queued_work_s = 0.0
        for request in orphans:
            self.ledger.note_retry(request, env.now)
            self._trace(
                "failover-retry",
                args={"rid": request.rid, "from": rep.id},
            )
            self.route(request)
        if self.recovery.restart:
            pool = sum(
                1
                for r in self.replicas.values()
                if r.state in (WARMING, HEALTHY) and not r.retiring
            )
            if pool < self.scenario.autoscaler.max_replicas:
                cold = (
                    self.recovery.restart_overhead_s
                    + self.cost.cold_start_s(self.recovery.checkpoint)
                )
                self.ledger.note_cold_start(cold)
                self.spawn_replica(cold_start_s=cold, reason="failover")

    def _autoscaler_proc(self):
        env = self.env
        cfg = self.scenario.autoscaler
        last_action = -math.inf
        while env.now < self._hard_deadline:
            yield env.timeout(cfg.poll_interval_s)
            if self.done.triggered:
                break
            pool = [
                rep
                for rep in self.replicas.values()
                if rep.state in (WARMING, HEALTHY) and not rep.retiring
            ]
            # in-flight requests count as load: a saturated pool whose
            # batchers happen to be empty must not look idle to scale-down
            queued = sum(len(rep.batcher) + len(rep.in_flight) for rep in pool)
            action = cfg.decide(
                queued=queued,
                replicas=len(pool),
                now=env.now,
                last_action_at=last_action,
            )
            if action > 0:
                cold = self.cost.cold_start_s(self.recovery.checkpoint)
                self.ledger.note_cold_start(cold)
                self.spawn_replica(cold_start_s=cold, reason="scale-up")
                self._trace("scale-up", tid="autoscaler",
                            args={"queued": queued, "pool": len(pool)})
                last_action = env.now
            elif action < 0:
                idle = [
                    rep
                    for rep in pool
                    if rep.state == HEALTHY
                    and not len(rep.batcher)
                    and not rep.in_flight
                ]
                if idle:
                    victim = max(idle, key=lambda r: r.id)
                    victim.retiring = True
                    if victim.wake is not None and not victim.wake.triggered:
                        victim.wake.succeed()
                    self._trace("scale-down", tid="autoscaler",
                                args={"replica": victim.id})
                    last_action = env.now

    # -- run -------------------------------------------------------------------
    def run(self) -> ServeReport:
        env = self.env
        for _ in range(self.scenario.initial_replicas):
            self.spawn_replica()
        env.process(self._arrivals_proc(), name="arrivals")
        if self.scenario.autoscaler.enabled:
            env.process(self._autoscaler_proc(), name="autoscaler")
        if self.injector is not None and self.injector.plan.failures:
            env.process(self._failure_proc(), name="failures")
        env.run(until=self.done)
        makespan = max(self.duration_s, env.now)
        for rep in self.replicas.values():
            if rep.warmed_at is None:
                continue
            end = rep.ended_at if rep.ended_at is not None else makespan
            self.ledger.note_replica_usage(
                rep.id, rep.busy_s, max(0.0, end - rep.warmed_at)
            )
        summary = self.ledger.finalize(makespan)
        counts = summary["completed"] + summary["shed"]
        if counts != summary["arrived"]:
            raise SimulationError(
                f"ledger accounted {counts} of {summary['arrived']} requests"
            )
        return ServeReport(
            scenario=self.scenario.name,
            policy=self.scenario.routing,
            model=self.scenario.model,
            duration_s=self.duration_s,
            seed=self.seed,
            summary=summary,
            ledger=self.ledger,
            trace=self.trace,
        )


def simulate_serve(
    scenario: ServeScenario,
    *,
    duration_s: float = 60.0,
    seed: int = 0,
    fault_plan: FaultPlan | None = None,
    recovery: RecoveryPolicy | None = None,
    collect_trace: bool = False,
    engine_mode: str = "exact",
) -> ServeReport:
    """Run one serving scenario to completion and return its report.

    ``engine_mode="fast"`` enables the vectorized trace generators; the
    event-driven serving loop itself is identical in both modes, and the
    equivalence suite pins the two reports bit-identical.
    """
    from repro.sim.fastpath import coerce_engine_mode

    mode = coerce_engine_mode(engine_mode)
    sim = _ServeSimulation(
        scenario,
        duration_s=duration_s,
        seed=seed,
        fault_plan=fault_plan,
        recovery=recovery or RESTART_FROM_CHECKPOINT,
        collect_trace=collect_trace,
        engine_mode=mode.value,
    )
    return sim.run()
