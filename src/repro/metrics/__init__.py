"""Image-quality assessment metrics (paper §II-E): PSNR and SSIM."""

from repro.metrics.psnr import psnr
from repro.metrics.ssim import ssim

__all__ = ["psnr", "ssim"]
