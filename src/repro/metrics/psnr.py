"""Peak signal-to-noise ratio."""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


def psnr(prediction: np.ndarray, target: np.ndarray, *, data_range: float = 1.0) -> float:
    """PSNR in dB; ``inf`` for identical images."""
    if prediction.shape != target.shape:
        raise DataError(
            f"psnr shape mismatch: {prediction.shape} vs {target.shape}"
        )
    if data_range <= 0:
        raise DataError(f"data_range must be > 0, got {data_range}")
    mse = float(np.mean((prediction.astype(np.float64) - target.astype(np.float64)) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(data_range**2 / mse)
