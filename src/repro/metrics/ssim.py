"""Structural similarity index (Wang et al. 2004, the paper's ref [17]).

Uniform 8x8 windows via integral images (numpy-only, O(N)); per-channel
SSIM maps are averaged.  Constants follow the reference implementation:
``C1=(K1*L)^2, C2=(K2*L)^2`` with K1=0.01, K2=0.03.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


def _window_mean(x: np.ndarray, win: int) -> np.ndarray:
    """Mean over all win x win windows via a 2-D cumulative sum."""
    integral = np.cumsum(np.cumsum(x, axis=0), axis=1)
    integral = np.pad(integral, ((1, 0), (1, 0)))
    totals = (
        integral[win:, win:]
        - integral[:-win, win:]
        - integral[win:, :-win]
        + integral[:-win, :-win]
    )
    return totals / (win * win)


def _ssim_channel(a: np.ndarray, b: np.ndarray, win: int, c1: float, c2: float) -> float:
    mu_a = _window_mean(a, win)
    mu_b = _window_mean(b, win)
    mu_aa = _window_mean(a * a, win)
    mu_bb = _window_mean(b * b, win)
    mu_ab = _window_mean(a * b, win)
    var_a = mu_aa - mu_a * mu_a
    var_b = mu_bb - mu_b * mu_b
    cov = mu_ab - mu_a * mu_b
    numerator = (2 * mu_a * mu_b + c1) * (2 * cov + c2)
    denominator = (mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2)
    return float(np.mean(numerator / denominator))


def ssim(
    prediction: np.ndarray,
    target: np.ndarray,
    *,
    data_range: float = 1.0,
    window: int = 8,
) -> float:
    """Mean SSIM over channels; inputs are (C,H,W) or (H,W)."""
    if prediction.shape != target.shape:
        raise DataError(
            f"ssim shape mismatch: {prediction.shape} vs {target.shape}"
        )
    if prediction.ndim == 2:
        prediction, target = prediction[None], target[None]
    if prediction.ndim != 3:
        raise DataError(f"ssim expects (C,H,W) or (H,W), got {prediction.shape}")
    h, w = prediction.shape[1:]
    if h < window or w < window:
        raise DataError(f"image {prediction.shape} smaller than SSIM window {window}")
    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2
    values = [
        _ssim_channel(
            prediction[c].astype(np.float64), target[c].astype(np.float64), window, c1, c2
        )
        for c in range(prediction.shape[0])
    ]
    return float(np.mean(values))
