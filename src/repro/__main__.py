"""Command-line interface: ``python -m repro <command>``.

Thin wrappers over the library for the common reproduction workflows:

* ``python -m repro scale --scenario MPI-Opt --gpus 4,32,512 --jobs 4``
* ``python -m repro profile --gpus 4 --steps 100``
* ``python -m repro table1``
* ``python -m repro fig1``
* ``python -m repro models``
* ``python -m repro cache stats``
* ``python -m repro resilience --gpus 8 --fail 3@2.0 --report report.json``
* ``python -m repro hybrid plan --ranks 8192``

``--profile`` (before the subcommand) wraps any of them in cProfile and
prints the top cumulative-time entries; sweep results go through the
on-disk result cache unless ``--no-cache`` is given.
"""

from __future__ import annotations

import argparse
import sys

from repro.perf import ResultCache, default_cache_dir, profiled_call

from repro.core import (
    MPI_DEFAULT,
    MPI_OPT,
    SCENARIOS,
    OptimizationPipeline,
    ScalingStudy,
    StudyConfig,
    scenario_by_name,
)
from repro.hardware import V100_16GB
from repro.models import get_model_cost, list_model_costs
from repro.models.costing import ThroughputModel
from repro.profiling import Hvprof, comparison_table
from repro.utils.tables import TextTable
from repro.utils.units import format_bytes


def _make_cache(args: argparse.Namespace) -> ResultCache:
    return ResultCache(args.cache_dir, enabled=not args.no_cache)


def _add_engine_mode(parser: argparse.ArgumentParser) -> None:
    """``--fast`` / ``--exact`` engine-mode switch (default exact)."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--fast", dest="engine_mode", action="store_const", const="fast",
        help="trace/replay fast path (bit-identical to --exact; "
             "see docs/engine_fastpath.md)",
    )
    group.add_argument(
        "--exact", dest="engine_mode", action="store_const", const="exact",
        help="walk every collective schedule through the full cost model",
    )
    parser.set_defaults(engine_mode="exact")


def cmd_scale(args: argparse.Namespace) -> int:
    from repro.core.scenarios import scenario_spec_by_name
    from repro.parallel import ParallelLayout

    scenario = scenario_by_name(args.scenario)
    workload = scenario_spec_by_name(args.workload)
    gpu_counts = [int(g) for g in args.gpus.split(",")]
    # the measurement window must cover at least one local-SGD period
    # and one full video sequence
    measure_steps = max(args.steps, args.local_sgd, workload.frames)
    layout = ParallelLayout(
        tp=args.tp, pp=args.pp,
        microbatches=args.microbatches, schedule=args.schedule,
    )
    study = ScalingStudy(scenario, StudyConfig(measure_steps=measure_steps,
                                               model=args.model,
                                               engine_mode=args.engine_mode,
                                               compression=args.compression,
                                               local_sgd_h=args.local_sgd,
                                               layout=layout,
                                               workload=workload))
    cache = _make_cache(args)
    points = study.run(gpu_counts, jobs=args.jobs, cache=cache)
    model_label = (
        args.model if workload.is_degenerate
        else f"{args.model}, {workload.name}"
    )
    table = TextTable(
        ["GPUs", "images/s", "efficiency", "step (ms)"],
        title=f"Scaling study — {scenario.name} ({model_label})",
    )
    for p in points:
        table.add_row(
            p.num_gpus, f"{p.images_per_second:.1f}", f"{p.efficiency:.1%}",
            f"{p.step_time * 1e3:.1f}",
        )
    print(table.render())
    if cache.enabled:
        stats = cache.stats()
        print(
            f"result cache: {stats['hits']} hit(s), {stats['misses']} miss(es) "
            f"({cache.directory})"
        )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    config = StudyConfig(measure_steps=args.steps)
    profiles = {}
    for scenario in (MPI_DEFAULT, MPI_OPT):
        hv = Hvprof()
        ScalingStudy(scenario, config).run_point(args.gpus, hvprof=hv)
        profiles[scenario.name] = hv
        print(hv.report(title=f"hvprof — {scenario.name}"))
    print(comparison_table(profiles["MPI"], profiles["MPI-Opt"]))
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    args.gpus, args.steps = 4, 100
    return cmd_profile(args)


def cmd_fig1(_args: argparse.Namespace) -> int:
    table = TextTable(["Model", "Batch", "images/s"],
                      title="Fig. 1 — single-V100 throughput")
    for name, batch in (("edsr-paper", 4), ("resnet-50", 32)):
        tm = ThroughputModel(get_model_cost(name), V100_16GB)
        table.add_row(name, batch, f"{tm.images_per_second(batch):.1f}")
    print(table.render())
    return 0


def cmd_models(_args: argparse.Namespace) -> int:
    table = TextTable(
        ["Model", "Params", "Gradient bytes", "Forward GFLOP/img"],
        title="Registered model cost structures",
    )
    for name in list_model_costs():
        cost = get_model_cost(name)
        table.add_row(
            name,
            f"{cost.total_params / 1e6:.2f}M",
            format_bytes(cost.gradient_bytes),
            f"{cost.flops_forward / 1e9:.1f}",
        )
    print(table.render())
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.directory}")
    else:
        print(f"cache directory: {cache.directory}")
        print(f"entries: {cache.entry_count()}")
    return 0


def _parse_failures(specs: list[str]):
    """``rank@time`` or ``rank@time@down_s`` → RankFailure list."""
    from repro.faults import RankFailure

    failures = []
    for spec in specs:
        parts = spec.split("@")
        if len(parts) not in (2, 3):
            raise SystemExit(
                f"bad --fail spec {spec!r}; expected rank@time[@down_s]"
            )
        down = float(parts[2]) if len(parts) == 3 else None
        failures.append(
            RankFailure(rank=int(parts[0]), time=float(parts[1]), down_s=down)
        )
    return failures


def cmd_resilience(args: argparse.Namespace) -> int:
    """Run one scaling point under a fault plan and itemize the recovery."""
    import json

    from repro.faults import FaultPlan
    from repro.resilience import (
        CheckpointPolicy,
        RecoveryAccounting,
        RecoveryPolicy,
    )

    scenario = scenario_by_name(args.scenario)
    specs = args.fail or ["3@2.0"]
    plan = FaultPlan(seed=args.seed, faults=tuple(_parse_failures(specs)))
    policy = RecoveryPolicy(
        restart=not args.no_restart,
        blacklist_after=args.blacklist_after,
        regrow=args.regrow,
        checkpoint=CheckpointPolicy(interval_steps=args.ckpt_interval),
    )
    study = ScalingStudy(
        scenario,
        StudyConfig(measure_steps=args.steps, model=args.model,
                    engine_mode=args.engine_mode),
        fault_plan=plan,
        recovery=policy,
    )
    cache = _make_cache(args)
    gpu_counts = [int(g) for g in args.gpus.split(",")]
    points = study.run(gpu_counts, jobs=args.jobs, cache=cache)
    mode = "shrink-continue" if args.no_restart else "restart-from-checkpoint"
    for p in points:
        r = p.resilience or {}
        print(
            f"== {scenario.name} @ {p.num_gpus} GPUs — {mode} "
            f"(plan seed {args.seed}) =="
        )
        print(
            f"throughput {p.images_per_second:.1f} images/s, "
            f"final world {r.get('final_world_size', p.num_gpus)}"
        )
        if p.resilience is not None:
            for line in RecoveryAccounting.from_payload(r).lines():
                print(line)
            print(f"fault-trace digest   {r['trace_digest']}")
    if args.report:
        from repro.core.study import point_payload

        report = {
            "scenario": scenario.name,
            "plan_seed": args.seed,
            "policy": mode,
            "points": [point_payload(p) for p in points],
        }
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"recovery report written to {args.report}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Simulate inference serving under one or all routing policies."""
    import json

    from repro.faults import FaultPlan
    from repro.serve import (
        POLICY_NAMES,
        VIDEO_MIX,
        AdmissionConfig,
        AutoscalerConfig,
        BatchingConfig,
        ServeJob,
        ServeScenario,
        SLOConfig,
        WorkloadConfig,
        run_serve_jobs,
        simulate_serve,
    )

    policies = list(POLICY_NAMES) if args.policy == "all" else [args.policy]
    video = args.workload == "video"
    # video arrivals are session starts (each expands into a whole frame
    # train), so the sensible default rate is streams/s, not frames/s
    rate = args.rate if args.rate is not None else (2.0 if video else 25.0)
    if video:
        workload = WorkloadConfig(
            kind="video", rate_rps=rate, classes=VIDEO_MIX
        )
    else:
        workload = WorkloadConfig(kind=args.workload, rate_rps=rate)
    autoscaler = AutoscalerConfig(
        enabled=not args.no_autoscale, max_replicas=args.max_replicas
    )

    def scenario_for(policy: str) -> ServeScenario:
        return ServeScenario(
            name=f"{args.workload}-{policy}",
            model=args.model,
            routing=policy,
            initial_replicas=args.replicas,
            workload=workload,
            batching=BatchingConfig(
                max_batch=args.max_batch,
                timeout_s=args.batch_timeout_ms / 1e3,
                # different upscale factors never pad into one batch
                mix_scales=not video,
            ),
            admission=AdmissionConfig(queue_capacity=args.queue_capacity),
            autoscaler=autoscaler,
            slo=SLOConfig(target_latency_s=args.slo_ms / 1e3),
            session_affinity=video,
        )

    plan = None
    if args.fail:
        plan = FaultPlan(
            seed=args.seed, faults=tuple(_parse_failures(args.fail))
        )

    if args.trace:
        # trace collection needs the live event list: run the first policy
        # inline, bypassing the cache
        from repro.profiling import write_chrome_trace

        report = simulate_serve(
            scenario_for(policies[0]),
            duration_s=args.duration,
            seed=args.seed,
            fault_plan=plan,
            collect_trace=True,
            engine_mode=args.engine_mode,
        )
        n = write_chrome_trace(args.trace, report.trace)
        reports = [report]
        print(f"chrome trace ({n} events) written to {args.trace}")
        if len(policies) > 1:
            jobs = [
                ServeJob(scenario_for(p), duration_s=args.duration,
                         seed=args.seed, fault_plan=plan,
                         engine_mode=args.engine_mode)
                for p in policies[1:]
            ]
            reports += run_serve_jobs(
                jobs, workers=args.jobs, cache=_make_cache(args)
            )
    else:
        jobs = [
            ServeJob(scenario_for(p), duration_s=args.duration,
                     seed=args.seed, fault_plan=plan,
                     engine_mode=args.engine_mode)
            for p in policies
        ]
        cache = _make_cache(args)
        reports = run_serve_jobs(jobs, workers=args.jobs, cache=cache)
        if cache.enabled:
            stats = cache.stats()
            print(
                f"result cache: {stats['hits']} hit(s), "
                f"{stats['misses']} miss(es) ({cache.directory})"
            )

    for report in reports:
        print(
            f"== serve {report.scenario} — policy {report.policy}, "
            f"{report.duration_s:g} s, seed {report.seed} =="
        )
        for line in report.lines():
            print(line)
    if args.report:
        payload = {
            "kind": "serve-sweep",
            "seed": args.seed,
            "duration_s": args.duration,
            "reports": [r.to_payload() for r in reports],
        }
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"serving report written to {args.report}")
    return 0


def cmd_comm(args: argparse.Namespace) -> int:
    """``comm tune`` / ``comm show`` — the selection-table workflow."""
    import json

    from repro.comm import (
        TuningConfig,
        available_backends,
        default_table,
        tune_compression_table,
        tune_table,
    )
    from repro.comm.selection import SelectionTable

    if args.comm_command == "tune":
        config = TuningConfig(
            backend=args.backend,
            byte_points=tuple(int(s) for s in args.sizes.split(",")),
            rank_counts=tuple(int(r) for r in args.ranks.split(",")),
        )
        if args.compression:
            table = tune_compression_table(
                config, topk_ratio=args.topk_ratio, cache=_make_cache(args)
            )
        else:
            table = tune_table(config, cache=_make_cache(args))
        print(table.render())
        print(f"table digest: {table.digest()}")
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(table.to_payload(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"table written to {args.out}")
    else:  # show
        if args.table:
            with open(args.table, encoding="utf-8") as fh:
                table = SelectionTable.from_payload(json.load(fh))
        else:
            table = default_table(args.backend)
        print(table.render())
        print(f"table digest: {table.digest()}")
        print(f"registered backends: {', '.join(available_backends())}")
    return 0


def cmd_hybrid(args: argparse.Namespace) -> int:
    """``hybrid plan`` — rank (dp, tp, pp) layouts for a target world."""
    import json

    from repro.parallel.planner import PlannerConfig, plan_hybrid

    config = PlannerConfig(
        ranks=args.ranks,
        scenario=args.scenario,
        model=args.model,
        batch_per_gpu=args.batch,
        engine_mode=args.engine_mode,
        max_tp=args.max_tp,
        max_pp=args.max_pp,
        microbatches=tuple(int(m) for m in args.microbatches.split(",")),
        fusion_mib=(
            tuple(int(f) for f in args.fusion_mib.split(","))
            if args.fusion_mib else ()
        ),
        schedules=tuple(args.schedules.split(",")),
        use_tuned_tables=args.tuned,
    )
    cache = _make_cache(args)
    report = plan_hybrid(config, jobs=args.jobs, cache=cache)

    table = TextTable(
        ["#", "dp", "tp", "pp", "mb", "sched", "table", "step (ms)",
         "images/s", "bubble", "train (s)"],
        title=(
            f"Hybrid plan — {args.ranks} ranks, {args.scenario} "
            f"({args.model}, {config.engine_mode})"
        ),
    )
    for rank, row in enumerate(report["points"][: args.top], start=1):
        table.add_row(
            rank, row["dp"], row["tp"], row["pp"], row["microbatches"],
            row["schedule"], row["table"],
            f"{row['step_time'] * 1e3:.2f}",
            f"{row['images_per_second']:.0f}",
            f"{row['bubble_fraction']:.0%}",
            f"{row['time_to_train_s']:.1f}",
        )
    print(table.render())
    if report["infeasible"]:
        print(f"{len(report['infeasible'])} layout(s) infeasible "
              f"(simulated OOM); see --report for reasons")
    best = report["best"]
    print(
        f"recommended layout: dp={best['dp']} tp={best['tp']} pp={best['pp']} "
        f"microbatches={best['microbatches']} ({best['schedule']}, "
        f"{best['table']} table) — step {best['step_time'] * 1e3:.2f} ms"
    )
    if report["hybrid_speedup"] is not None:
        print(
            f"best hybrid vs best pure-dp: "
            f"{report['hybrid_speedup']:.3f}x on simulated time-to-train"
        )
    print(f"plan digest: {report['digest']}")
    if cache.enabled:
        stats = cache.stats()
        print(
            f"result cache: {stats['hits']} hit(s), {stats['misses']} "
            f"miss(es) ({cache.directory})"
        )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"plan report written to {args.report}")
    return 0


def cmd_diagnose(args: argparse.Namespace) -> int:
    report = OptimizationPipeline(num_gpus=args.gpus, steps=args.steps).run()
    print(report.table())
    for line in report.diagnosis:
        print(f"diagnosis: {line}")
    for line in report.recommendations:
        print(f"recommend: {line}")
    print(f"throughput gain: {report.throughput_gain_pct:.1f}%")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the invariant-checked chaos campaign."""
    import json

    from repro.chaos import (
        POLICY_NAMES,
        SCENARIOS as CHAOS_SCENARIOS,
        CampaignConfig,
        run_campaign,
    )

    scenarios = (
        tuple(sorted(CHAOS_SCENARIOS))
        if args.scenarios == "all"
        else tuple(args.scenarios.split(","))
    )
    policies = (
        POLICY_NAMES if args.policies == "all"
        else tuple(args.policies.split(","))
    )
    config = CampaignConfig(
        scenarios=scenarios,
        policies=policies,
        seeds=args.seeds,
        num_gpus=args.gpus,
        measure_steps=args.steps,
        serve_duration_s=args.duration,
    )
    cache = _make_cache(args)
    report = run_campaign(config, jobs=args.jobs, cache=cache)
    cells = len(report.rows)
    print(
        f"== chaos campaign: {len(scenarios)} scenario(s) x "
        f"{len(policies)} polic(ies) x {args.seeds} seed(s) = "
        f"{cells} cell(s), {args.gpus} GPUs =="
    )
    for line in report.lines():
        print(line)
    if cache.enabled:
        stats = cache.stats()
        print(
            f"result cache: {stats['hits']} hit(s), "
            f"{stats['misses']} miss(es) ({cache.directory})"
        )
    print(f"campaign digest: {report.digest}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report.to_payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"campaign report written to {args.report}")
    failures = report.failures()
    if failures:
        for f in failures:
            print(
                f"INVARIANT FAILED: {f['invariant']} at "
                f"({f['scenario']}, {f['policy']}, seed {f['seed']}): "
                f"{f['detail']}",
                file=sys.stderr,
            )
        return 1
    checked = sum(len(row["invariants"]) for row in report.rows)
    print(f"all {checked} invariant check(s) green")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--profile", action="store_true",
        help="wrap the subcommand in cProfile and print the top entries",
    )
    parser.add_argument(
        "--profile-out", default="repro-profile.pstats",
        help="pstats dump path for --profile",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scale = sub.add_parser("scale", help="run a scaling study")
    scale.add_argument("--scenario", default="MPI-Opt",
                       choices=[s.name for s in SCENARIOS])
    scale.add_argument("--gpus", default="4,16,64")
    scale.add_argument("--steps", type=int, default=2)
    scale.add_argument("--model", default="edsr-paper")
    scale.add_argument("--workload", default="image",
                       choices=["image", "multiscale", "multiscale8", "video"],
                       help="training workload scenario: single-image "
                            "(the paper's), multi-scale heads (x2/x4[/x8] "
                            "in one run), or recurrent video sequences; "
                            "see docs/scenarios.md")
    scale.add_argument("--jobs", type=int, default=1,
                       help="worker processes for independent sweep points")
    scale.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk result cache")
    scale.add_argument("--cache-dir", default=None,
                       help=f"result cache directory (default {default_cache_dir()})")
    scale.add_argument("--compression", default="none",
                       metavar="MODE",
                       help="gradient compression: none, fp16, bf16, or "
                            "topk:<ratio> (e.g. topk:0.01); see "
                            "docs/compression.md")
    scale.add_argument("--local-sgd", type=int, default=1, metavar="H",
                       help="local-SGD sync period: H-1 communication-free "
                            "steps between parameter-averaging syncs "
                            "(1 = synchronous SGD)")
    scale.add_argument("--tp", type=int, default=1,
                       help="tensor-parallel degree (dp is derived; "
                            "see docs/parallelism.md)")
    scale.add_argument("--pp", type=int, default=1,
                       help="pipeline-parallel depth")
    scale.add_argument("--microbatches", type=int, default=1,
                       help="microbatch count per pipeline replica "
                            "(requires --pp > 1)")
    scale.add_argument("--schedule", default="1f1b",
                       choices=["1f1b", "gpipe"],
                       help="pipeline schedule (differ only in live-"
                            "activation memory)")
    _add_engine_mode(scale)
    scale.set_defaults(func=cmd_scale)

    profile = sub.add_parser("profile", help="hvprof default vs MPI-Opt")
    profile.add_argument("--gpus", type=int, default=4)
    profile.add_argument("--steps", type=int, default=20)
    profile.set_defaults(func=cmd_profile)

    table1 = sub.add_parser("table1", help="reproduce Table I (100 steps)")
    table1.set_defaults(func=cmd_table1)

    fig1 = sub.add_parser("fig1", help="reproduce Fig. 1 anchors")
    fig1.set_defaults(func=cmd_fig1)

    models = sub.add_parser("models", help="list model cost structures")
    models.set_defaults(func=cmd_models)

    diagnose = sub.add_parser("diagnose", help="run the §III pipeline")
    diagnose.add_argument("--gpus", type=int, default=4)
    diagnose.add_argument("--steps", type=int, default=10)
    diagnose.set_defaults(func=cmd_diagnose)

    res = sub.add_parser(
        "resilience",
        help="run a scaling point under injected faults with elastic recovery",
    )
    res.add_argument("--scenario", default="MPI-Opt",
                     choices=[s.name for s in SCENARIOS])
    res.add_argument("--gpus", default="8",
                     help="comma-separated world sizes to run")
    res.add_argument("--steps", type=int, default=8,
                     help="measured training steps per point")
    res.add_argument("--model", default="edsr-paper")
    res.add_argument("--fail", action="append", default=None,
                     metavar="RANK@TIME[@DOWN]",
                     help="inject a rank failure (repeatable); DOWN seconds "
                          "makes the outage transient for --regrow")
    res.add_argument("--seed", type=int, default=0, help="fault plan seed")
    res.add_argument("--no-restart", action="store_true",
                     help="shrink-and-continue instead of checkpoint restart")
    res.add_argument("--regrow", action="store_true",
                     help="re-admit ranks whose outage window ends")
    res.add_argument("--blacklist-after", type=int, default=0,
                     help="evict a rank after this many straggler offenses")
    res.add_argument("--ckpt-interval", type=int, default=2,
                     help="checkpoint every N steps")
    res.add_argument("--jobs", type=int, default=1)
    res.add_argument("--no-cache", action="store_true")
    res.add_argument("--cache-dir", default=None)
    res.add_argument("--report", default=None,
                     help="write the JSON recovery report to this path")
    _add_engine_mode(res)
    res.set_defaults(func=cmd_resilience)

    serve = sub.add_parser(
        "serve",
        help="simulate SR inference serving (batching, routing, autoscaling)",
    )
    serve.add_argument("--policy", default="jsq",
                       choices=["rr", "jsq", "least-loaded", "all"],
                       help="routing policy, or 'all' to sweep every policy")
    serve.add_argument("--workload", default="poisson",
                       choices=["poisson", "diurnal", "bursty", "video"],
                       help="arrival process; 'video' streams sessions of "
                            "frames with per-frame deadlines, session "
                            "affinity, and scale-pure batching")
    serve.add_argument("--rate", type=float, default=None,
                       help="mean arrival rate (requests/s; video: "
                            "session starts/s). Default 25, video 2")
    serve.add_argument("--duration", type=float, default=60.0,
                       help="length of the arrival trace (simulated seconds)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--model", default="edsr-paper")
    serve.add_argument("--replicas", type=int, default=2,
                       help="initial replica count")
    serve.add_argument("--max-replicas", type=int, default=8,
                       help="autoscaler ceiling")
    serve.add_argument("--max-batch", type=int, default=8)
    serve.add_argument("--batch-timeout-ms", type=float, default=25.0)
    serve.add_argument("--queue-capacity", type=int, default=64,
                       help="bounded per-replica queue (admission control)")
    serve.add_argument("--slo-ms", type=float, default=250.0,
                       help="latency SLO target for goodput accounting")
    serve.add_argument("--no-autoscale", action="store_true")
    serve.add_argument("--fail", action="append", default=None,
                       metavar="REPLICA@TIME[@DOWN]",
                       help="kill a replica mid-run (repeatable); failover "
                            "retries its orphaned requests")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker processes for --policy all sweeps")
    serve.add_argument("--no-cache", action="store_true")
    serve.add_argument("--cache-dir", default=None)
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Chrome trace_event JSON timeline "
                            "(chrome://tracing / Perfetto)")
    serve.add_argument("--report", default=None,
                       help="write the JSON serving report to this path")
    _add_engine_mode(serve)
    serve.set_defaults(func=cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="run the invariant-checked chaos campaign "
             "(scenario x policy x seed)",
    )
    chaos.add_argument("--scenarios", default="all",
                       help="comma-separated chaos scenarios, or 'all' "
                            "(node-failure, switch-failure, partition, "
                            "wire-corruption, ckpt-corruption, "
                            "serve-failover, video-failover)")
    chaos.add_argument("--policies", default="all",
                       help="comma-separated recovery policies, or 'all' "
                            "(restart, shrink)")
    chaos.add_argument("--seeds", type=int, default=3,
                       help="seeds per (scenario, policy) cell")
    chaos.add_argument("--gpus", type=int, default=16,
                       help="world size of the training cells")
    chaos.add_argument("--steps", type=int, default=40,
                       help="measured training steps per cell")
    chaos.add_argument("--duration", type=float, default=60.0,
                       help="serving cell duration (simulated seconds)")
    chaos.add_argument("--jobs", type=int, default=1,
                       help="worker processes for independent cells")
    chaos.add_argument("--no-cache", action="store_true")
    chaos.add_argument("--cache-dir", default=None)
    chaos.add_argument("--report", default=None, metavar="PATH",
                       help="write the JSON campaign report to this path")
    chaos.set_defaults(func=cmd_chaos)

    comm = sub.add_parser(
        "comm",
        help="tune or inspect collective algorithm-selection tables",
    )
    comm.add_argument("comm_command", choices=["tune", "show"],
                      nargs="?", default="show")
    comm.add_argument("--backend", default="mpi",
                      help="communication backend (mpi, nccl, hierarchical)")
    comm.add_argument("--ranks", default="4,16,64",
                      help="comma-separated rank counts to sweep (tune)")
    comm.add_argument("--sizes", default="4096,65536,1048576,16777216,67108864",
                      help="comma-separated message sizes in bytes (tune)")
    comm.add_argument("--out", default=None, metavar="PATH",
                      help="write the tuned table as JSON (tune)")
    comm.add_argument("--table", default=None, metavar="PATH",
                      help="show a previously tuned table JSON instead of "
                           "the builtin default")
    comm.add_argument("--compression", action="store_true",
                      help="tune compression modes (none/fp16/topk) instead "
                           "of collective algorithms")
    comm.add_argument("--topk-ratio", type=float, default=0.01,
                      help="top-k density for the compression sweep")
    comm.add_argument("--no-cache", action="store_true")
    comm.add_argument("--cache-dir", default=None)
    comm.set_defaults(func=cmd_comm)

    hybrid = sub.add_parser(
        "hybrid",
        help="plan a hybrid (dp x tp x pp) layout for a target world size",
    )
    hybrid.add_argument("hybrid_command", choices=["plan"],
                        nargs="?", default="plan")
    hybrid.add_argument("--ranks", type=int, default=8192,
                        help="target world size (simulated GPUs)")
    hybrid.add_argument("--scenario", default="MPI-Opt",
                        choices=[s.name for s in SCENARIOS])
    hybrid.add_argument("--model", default="edsr-paper")
    hybrid.add_argument("--batch", type=int, default=4,
                        help="per-GPU training batch size")
    hybrid.add_argument("--max-tp", type=int, default=0,
                        help="largest tensor-parallel degree to consider "
                             "(0 = the node's GPU count)")
    hybrid.add_argument("--max-pp", type=int, default=4,
                        help="largest pipeline depth to consider")
    hybrid.add_argument("--microbatches", default="2,4,8,16",
                        help="comma-separated microbatch counts for "
                             "pipelined layouts")
    hybrid.add_argument("--fusion-mib", default=None,
                        help="extra Horovod fusion-threshold variants to "
                             "price (comma-separated MiB)")
    hybrid.add_argument("--schedules", default="1f1b",
                        help="pipeline schedules to price (1f1b, gpipe)")
    hybrid.add_argument("--tuned", action="store_true",
                        help="also price every layout under a tuned comm "
                             "selection table (comm tune)")
    hybrid.add_argument("--top", type=int, default=10,
                        help="ranked layouts to print")
    hybrid.add_argument("--jobs", type=int, default=1,
                        help="worker processes for candidate pricing")
    hybrid.add_argument("--no-cache", action="store_true")
    hybrid.add_argument("--cache-dir", default=None)
    hybrid.add_argument("--report", default=None, metavar="PATH",
                        help="write the full JSON plan report to this path")
    _add_engine_mode(hybrid)
    # planning sweeps dozens of multi-thousand-rank points; the fast engine
    # is bit-identical to exact (pinned by the equivalence suite), so it is
    # the default here — --exact opts into the full schedule walk
    hybrid.set_defaults(engine_mode="fast")
    hybrid.set_defaults(func=cmd_hybrid)

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("cache_command", choices=["stats", "clear"],
                       nargs="?", default="stats")
    cache.add_argument("--cache-dir", default=None)
    cache.set_defaults(func=cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.profile:
        code, report = profiled_call(args.func, args, out_path=args.profile_out)
        print(report)
        print(f"profile written to {args.profile_out}")
        return code
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
