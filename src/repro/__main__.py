"""Command-line interface: ``python -m repro <command>``.

Thin wrappers over the library for the common reproduction workflows:

* ``python -m repro scale --scenario MPI-Opt --gpus 4,32,512 --jobs 4``
* ``python -m repro profile --gpus 4 --steps 100``
* ``python -m repro table1``
* ``python -m repro fig1``
* ``python -m repro models``
* ``python -m repro cache stats``

``--profile`` (before the subcommand) wraps any of them in cProfile and
prints the top cumulative-time entries; sweep results go through the
on-disk result cache unless ``--no-cache`` is given.
"""

from __future__ import annotations

import argparse
import sys

from repro.perf import ResultCache, default_cache_dir, profiled_call

from repro.core import (
    MPI_DEFAULT,
    MPI_OPT,
    SCENARIOS,
    OptimizationPipeline,
    ScalingStudy,
    StudyConfig,
    scenario_by_name,
)
from repro.hardware import V100_16GB
from repro.models import get_model_cost, list_model_costs
from repro.models.costing import ThroughputModel
from repro.profiling import Hvprof, comparison_table
from repro.utils.tables import TextTable
from repro.utils.units import format_bytes


def _make_cache(args: argparse.Namespace) -> ResultCache:
    return ResultCache(args.cache_dir, enabled=not args.no_cache)


def cmd_scale(args: argparse.Namespace) -> int:
    scenario = scenario_by_name(args.scenario)
    gpu_counts = [int(g) for g in args.gpus.split(",")]
    study = ScalingStudy(scenario, StudyConfig(measure_steps=args.steps,
                                               model=args.model))
    cache = _make_cache(args)
    points = study.run(gpu_counts, jobs=args.jobs, cache=cache)
    table = TextTable(
        ["GPUs", "images/s", "efficiency", "step (ms)"],
        title=f"Scaling study — {scenario.name} ({args.model})",
    )
    for p in points:
        table.add_row(
            p.num_gpus, f"{p.images_per_second:.1f}", f"{p.efficiency:.1%}",
            f"{p.step_time * 1e3:.1f}",
        )
    print(table.render())
    if cache.enabled:
        stats = cache.stats()
        print(
            f"result cache: {stats['hits']} hit(s), {stats['misses']} miss(es) "
            f"({cache.directory})"
        )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    config = StudyConfig(measure_steps=args.steps)
    profiles = {}
    for scenario in (MPI_DEFAULT, MPI_OPT):
        hv = Hvprof()
        ScalingStudy(scenario, config).run_point(args.gpus, hvprof=hv)
        profiles[scenario.name] = hv
        print(hv.report(title=f"hvprof — {scenario.name}"))
    print(comparison_table(profiles["MPI"], profiles["MPI-Opt"]))
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    args.gpus, args.steps = 4, 100
    return cmd_profile(args)


def cmd_fig1(_args: argparse.Namespace) -> int:
    table = TextTable(["Model", "Batch", "images/s"],
                      title="Fig. 1 — single-V100 throughput")
    for name, batch in (("edsr-paper", 4), ("resnet-50", 32)):
        tm = ThroughputModel(get_model_cost(name), V100_16GB)
        table.add_row(name, batch, f"{tm.images_per_second(batch):.1f}")
    print(table.render())
    return 0


def cmd_models(_args: argparse.Namespace) -> int:
    table = TextTable(
        ["Model", "Params", "Gradient bytes", "Forward GFLOP/img"],
        title="Registered model cost structures",
    )
    for name in list_model_costs():
        cost = get_model_cost(name)
        table.add_row(
            name,
            f"{cost.total_params / 1e6:.2f}M",
            format_bytes(cost.gradient_bytes),
            f"{cost.flops_forward / 1e9:.1f}",
        )
    print(table.render())
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.directory}")
    else:
        print(f"cache directory: {cache.directory}")
        print(f"entries: {cache.entry_count()}")
    return 0


def cmd_diagnose(args: argparse.Namespace) -> int:
    report = OptimizationPipeline(num_gpus=args.gpus, steps=args.steps).run()
    print(report.table())
    for line in report.diagnosis:
        print(f"diagnosis: {line}")
    for line in report.recommendations:
        print(f"recommend: {line}")
    print(f"throughput gain: {report.throughput_gain_pct:.1f}%")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--profile", action="store_true",
        help="wrap the subcommand in cProfile and print the top entries",
    )
    parser.add_argument(
        "--profile-out", default="repro-profile.pstats",
        help="pstats dump path for --profile",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scale = sub.add_parser("scale", help="run a scaling study")
    scale.add_argument("--scenario", default="MPI-Opt",
                       choices=[s.name for s in SCENARIOS])
    scale.add_argument("--gpus", default="4,16,64")
    scale.add_argument("--steps", type=int, default=2)
    scale.add_argument("--model", default="edsr-paper")
    scale.add_argument("--jobs", type=int, default=1,
                       help="worker processes for independent sweep points")
    scale.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk result cache")
    scale.add_argument("--cache-dir", default=None,
                       help=f"result cache directory (default {default_cache_dir()})")
    scale.set_defaults(func=cmd_scale)

    profile = sub.add_parser("profile", help="hvprof default vs MPI-Opt")
    profile.add_argument("--gpus", type=int, default=4)
    profile.add_argument("--steps", type=int, default=20)
    profile.set_defaults(func=cmd_profile)

    table1 = sub.add_parser("table1", help="reproduce Table I (100 steps)")
    table1.set_defaults(func=cmd_table1)

    fig1 = sub.add_parser("fig1", help="reproduce Fig. 1 anchors")
    fig1.set_defaults(func=cmd_fig1)

    models = sub.add_parser("models", help="list model cost structures")
    models.set_defaults(func=cmd_models)

    diagnose = sub.add_parser("diagnose", help="run the §III pipeline")
    diagnose.add_argument("--gpus", type=int, default=4)
    diagnose.add_argument("--steps", type=int, default=10)
    diagnose.set_defaults(func=cmd_diagnose)

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("cache_command", choices=["stats", "clear"],
                       nargs="?", default="stats")
    cache.add_argument("--cache-dir", default=None)
    cache.set_defaults(func=cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.profile:
        code, report = profiled_call(args.func, args, out_path=args.profile_out)
        print(report)
        print(f"profile written to {args.profile_out}")
        return code
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
