"""SRCNN (Dong et al. 2014): the first CNN-based SR model (paper §II-E).

Operates on a bicubic-upscaled input (post-upsampling came later): three
convolutions — patch extraction, non-linear mapping, reconstruction.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import functional as F
from repro.tensor.nn import Conv2d, Module
from repro.tensor.tensor import Tensor
from repro.models.bicubic import bicubic_upscale


class SRCNN(Module):
    def __init__(
        self,
        *,
        n_colors: int = 3,
        f1: int = 64,
        f2: int = 32,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.conv1 = Conv2d(n_colors, f1, 9, rng=rng)
        self.conv2 = Conv2d(f1, f2, 1, rng=rng)
        self.conv3 = Conv2d(f2, n_colors, 5, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """``x`` must already be at the target (HR) resolution."""
        x = F.relu(self.conv1(x))
        x = F.relu(self.conv2(x))
        return self.conv3(x)

    def upscale(self, lr_image: np.ndarray, scale: int) -> np.ndarray:
        """Bicubic pre-upsample then refine (the SRCNN pipeline)."""
        from repro.tensor.tensor import no_grad

        single = lr_image.ndim == 3
        batch = lr_image[None] if single else lr_image
        upsampled = np.stack([bicubic_upscale(img, scale) for img in batch])
        self.eval()
        with no_grad():
            out = self.forward(Tensor(upsampled.astype(np.float32))).numpy()
        self.train()
        return out[0] if single else out
