"""Recurrent multi-scale EDSR for the video SR scenario.

One shared EDSR trunk feeds one sub-pixel upsampler head per requested
scale; a temporal fusion conv (previous hidden state concatenated onto
the trunk features, 2F -> F) carries recurrent state between frames.
The parameter structure mirrors
:meth:`repro.models.costing.ModelCostModel.for_edsr_multi` exactly —
tests assert the parity — so the analytic cost model prices precisely
what the functional model trains.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.models.blocks import MeanShift, ResBlock, Upsampler, upsampler_stage_factors
from repro.models.edsr import DIV2K_RGB_MEAN, EDSR_TINY, EDSRConfig
from repro.tensor import functional as F
from repro.tensor.nn import Conv2d, Module
from repro.tensor.tensor import Tensor


class RecurrentEDSR(Module):
    """Trainable multi-scale, optionally recurrent EDSR variant.

    ``forward`` maps one frame batch (N, C, H, W) plus the previous
    hidden state to per-scale outputs ``{scale: (N, C, scale*H,
    scale*W)}`` and the new hidden state.  With ``recurrent=False`` the
    hidden input is ignored and the model is a plain multi-head EDSR.
    """

    def __init__(
        self,
        config: EDSRConfig = EDSR_TINY,
        scales: tuple[int, ...] = (2,),
        *,
        recurrent: bool = True,
        rng: np.random.Generator | None = None,
        rgb_mean: tuple[float, float, float] = DIV2K_RGB_MEAN,
    ):
        super().__init__()
        if not scales:
            raise ConfigError("RecurrentEDSR needs at least one scale")
        for s in scales:
            upsampler_stage_factors(s)  # typed ConfigError on unsupported
        rng = rng or np.random.default_rng(0)
        self.config = config
        self.scales = tuple(scales)
        self.recurrent = recurrent
        c = config
        self.sub_mean = MeanShift(rgb_mean, sign=-1)
        self.add_mean = MeanShift(rgb_mean, sign=+1)
        self.head = Conv2d(c.n_colors, c.n_feats, c.kernel_size, rng=rng)
        self.body = [
            ResBlock(c.n_feats, c.kernel_size, res_scale=c.res_scale, rng=rng)
            for _ in range(c.n_resblocks)
        ]
        for i, block in enumerate(self.body):
            setattr(self, f"block{i}", block)
        self.body_conv = Conv2d(c.n_feats, c.n_feats, c.kernel_size, rng=rng)
        self.fuse = (
            Conv2d(2 * c.n_feats, c.n_feats, c.kernel_size, rng=rng)
            if recurrent
            else None
        )
        self.upsamplers: dict[int, Upsampler] = {}
        self.tails: dict[int, Conv2d] = {}
        for s in self.scales:
            up = Upsampler(s, c.n_feats, rng=rng)
            tail = Conv2d(c.n_feats, c.n_colors, c.kernel_size, rng=rng)
            setattr(self, f"up{s}", up)
            setattr(self, f"tail{s}", tail)
            self.upsamplers[s] = up
            self.tails[s] = tail

    def init_hidden(self, batch: int, height: int, width: int) -> Tensor:
        """All-zero hidden state for the first frame of a sequence."""
        c = self.config
        return Tensor(
            np.zeros((batch, c.n_feats, height, width), dtype=np.float32)
        )

    def forward(
        self, x: Tensor, hidden: Tensor | None = None
    ) -> tuple[dict[int, Tensor], Tensor]:
        x = self.sub_mean(x)
        x = self.head(x)
        skip = x
        for block in self.body:
            x = block(x)
        x = F.add(self.body_conv(x), skip)
        if self.fuse is not None:
            if hidden is None:
                n, _c, h, w = x.data.shape
                hidden = self.init_hidden(n, h, w)
            x = F.relu(self.fuse(F.concatenate([x, hidden], axis=1)))
        new_hidden = x
        outputs = {
            s: self.add_mean(self.tails[s](self.upsamplers[s](x)))
            for s in self.scales
        }
        return outputs, new_hidden
