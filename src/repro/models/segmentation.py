"""Semantic-segmentation cost model (DeepLabv3-class encoder + ASPP head).

The paper argues its MPI-layer optimizations are model-agnostic (§I-C:
"our proposed training approach is agnostic to the model, DL framework,
and system") and builds on the authors' earlier semantic-segmentation
study (reference [7], DeepLab on Summit).  This module provides the cost
structure of a DeepLabv3-like network so the scaling study can be run on a
second, architecturally different communication-heavy workload:
a ResNet-50 encoder with output-stride 16, an ASPP pyramid, and a dense
classifier head at 513x513 crops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.models.costing import LayerCost, ModelCostModel, _conv_cost
from repro.models.resnet import RESNET50, Bottleneck, ResNetConfig


@dataclass(frozen=True)
class SegmentationConfig:
    """DeepLabv3-ish hyperparameters."""

    name: str = "deeplabv3-rn50"
    backbone: ResNetConfig = RESNET50
    crop: int = 513
    num_classes: int = 21
    aspp_channels: int = 256
    atrous_rates: tuple[int, ...] = (6, 12, 18)

    def __post_init__(self) -> None:
        if self.crop < 64:
            raise ConfigError("crop must be >= 64")
        if self.num_classes < 2:
            raise ConfigError("num_classes must be >= 2")


DEEPLAB_V3 = SegmentationConfig()


def segmentation_cost(config: SegmentationConfig = DEEPLAB_V3) -> ModelCostModel:
    """Cost structure of the segmentation network at its crop size.

    The backbone follows the bottleneck layout of the configured ResNet
    but, as in DeepLab, the last stage uses stride 1 + dilation so the
    output stride is 16 (denser features => much higher FLOPs than the
    classifier variant).
    """
    size = config.crop
    bb = config.backbone
    layers: list[LayerCost] = [
        _conv_cost("stem", 3, bb.stem_channels, 7, size // 2, size // 2)
    ]
    h = w = size // 4
    cin = bb.stem_channels
    for s, (width, count, stage_stride) in enumerate(bb.stages):
        # DeepLab: final stage keeps spatial resolution (dilated convs)
        effective_stride = 1 if s == len(bb.stages) - 1 else stage_stride
        for b in range(count):
            stride = effective_stride if b == 0 else 1
            h_out, w_out = h // stride, w // stride
            cout = width * Bottleneck.expansion
            prefix = f"stage{s}.block{b}"
            layers.append(_conv_cost(f"{prefix}.conv1", cin, width, 1, h, w))
            layers.append(
                _conv_cost(f"{prefix}.conv2", width, width, 3, h_out, w_out)
            )
            layers.append(_conv_cost(f"{prefix}.conv3", width, cout, 1, h_out, w_out))
            if stride != 1 or cin != cout:
                layers.append(_conv_cost(f"{prefix}.proj", cin, cout, 1, h_out, w_out))
            cin = cout
            h, w = h_out, w_out
    # ASPP: 1x1 + three dilated 3x3 branches + image pooling + projection
    aspp = config.aspp_channels
    layers.append(_conv_cost("aspp.conv1x1", cin, aspp, 1, h, w))
    for rate in config.atrous_rates:
        layers.append(_conv_cost(f"aspp.atrous{rate}", cin, aspp, 3, h, w))
    layers.append(_conv_cost("aspp.pool_proj", cin, aspp, 1, 1, 1))
    layers.append(_conv_cost("aspp.merge", aspp * 5, aspp, 1, h, w))
    # classifier head at 1/4 resolution after upsampling
    head_h, head_w = size // 4, size // 4
    layers.append(_conv_cost("head.refine", aspp, aspp, 3, head_h, head_w))
    layers.append(
        _conv_cost("head.classify", aspp, config.num_classes, 1, head_h, head_w)
    )
    # dense prediction stacks sustain high utilization like EDSR's convs
    return ModelCostModel(
        config.name, layers, peak_utilization=0.45, batch_half_point=1.5
    )
