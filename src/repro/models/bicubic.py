"""Classical bicubic resampling (Keys 1981, a=-0.5).

Serves two roles: the traditional-baseline comparison of the paper's
Fig. 4, and the degradation operator that synthesizes LR training inputs
from HR targets (paper §II-E: "LR training images can be obtained by
downsampling HR target images").
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


def _cubic_kernel(x: np.ndarray, a: float = -0.5) -> np.ndarray:
    """Keys cubic convolution kernel."""
    ax = np.abs(x)
    ax2, ax3 = ax * ax, ax * ax * ax
    out = np.zeros_like(ax)
    inner = ax <= 1
    outer = (ax > 1) & (ax < 2)
    out[inner] = (a + 2) * ax3[inner] - (a + 3) * ax2[inner] + 1
    out[outer] = a * ax3[outer] - 5 * a * ax2[outer] + 8 * a * ax[outer] - 4 * a
    return out


def _resample_axis(image: np.ndarray, out_size: int, axis: int) -> np.ndarray:
    """Separable cubic resampling along one axis (edge-clamped)."""
    in_size = image.shape[axis]
    if in_size == out_size:
        return image
    scale = in_size / out_size
    # output sample centres in input coordinates
    centres = (np.arange(out_size) + 0.5) * scale - 0.5
    left = np.floor(centres).astype(int) - 1
    offsets = np.arange(4)
    sample_idx = left[:, None] + offsets[None, :]  # (out, 4)
    weights = _cubic_kernel(centres[:, None] - sample_idx)  # (out, 4)
    weights = weights / weights.sum(axis=1, keepdims=True)
    sample_idx = np.clip(sample_idx, 0, in_size - 1)
    moved = np.moveaxis(image, axis, 0)
    gathered = moved[sample_idx]  # (out, 4, ...)
    result = np.einsum("of,of...->o...", weights.astype(image.dtype), gathered)
    return np.moveaxis(result, 0, axis)


def bicubic_resize(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Resize (C,H,W) or (H,W) image to (out_h, out_w)."""
    if image.ndim == 2:
        image = image[None]
        squeeze = True
    elif image.ndim == 3:
        squeeze = False
    else:
        raise DataError(f"bicubic_resize expects (C,H,W) or (H,W), got {image.shape}")
    if out_h < 1 or out_w < 1:
        raise DataError(f"output size must be >= 1, got ({out_h}, {out_w})")
    out = _resample_axis(image, out_h, axis=1)
    out = _resample_axis(out, out_w, axis=2)
    return out[0] if squeeze else out


def bicubic_upscale(image: np.ndarray, scale: int) -> np.ndarray:
    """Upscale a (C,H,W) image by an integer factor."""
    if scale < 1:
        raise DataError(f"scale must be >= 1, got {scale}")
    h, w = image.shape[-2], image.shape[-1]
    return bicubic_resize(image, h * scale, w * scale)


def bicubic_downscale(image: np.ndarray, scale: int) -> np.ndarray:
    """Downscale a (C,H,W) image by an integer factor (the LR generator)."""
    h, w = image.shape[-2], image.shape[-1]
    if h % scale or w % scale:
        raise DataError(
            f"image dims {(h, w)} not divisible by scale {scale}"
        )
    return bicubic_resize(image, h // scale, w // scale)
