"""Super-resolution models and the classification comparison model.

* :class:`~repro.models.edsr.EDSR` — the paper's evaluation model
  (Lim et al. 2017), with presets for the paper-scale configuration and a
  tiny functional configuration for real training in tests/examples;
* :class:`~repro.models.srcnn.SRCNN` and
  :class:`~repro.models.srresnet.SRResNet` — earlier DLSR baselines
  (paper §II-E);
* :class:`~repro.models.resnet.ResNet` — ResNet-50 for the Fig. 1
  single-GPU throughput comparison;
* :func:`~repro.models.bicubic.bicubic_upscale` — the classical baseline
  of the paper's Fig. 4;
* :mod:`~repro.models.costing` — analytic FLOP/memory/gradient-schedule
  model used by the performance simulation (paper-scale models are far too
  large to execute in numpy, so benchmarks run on their *cost structure*,
  which tests validate against the real tiny models).
"""

from repro.models.blocks import (
    SUPPORTED_SCALES,
    MeanShift,
    ResBlock,
    Upsampler,
    upsampler_stage_factors,
)
from repro.models.edsr import (
    EDSR,
    EDSRConfig,
    EDSR_PAPER,
    EDSR_BASELINE,
    EDSR_PAPER_TEXT,
    EDSR_TINY,
)
from repro.models.srcnn import SRCNN
from repro.models.srresnet import SRResNet
from repro.models.resnet import ResNet, ResNetConfig, RESNET50, RESNET_TINY
from repro.models.bicubic import bicubic_upscale
from repro.models.costing import (
    GradientTensor,
    LayerCost,
    ModelCostModel,
    TrainingMemoryModel,
)
from repro.models.registry import (
    get_model_cost,
    get_scenario_cost,
    list_model_costs,
)
from repro.models.video import RecurrentEDSR

__all__ = [
    "SUPPORTED_SCALES",
    "MeanShift",
    "ResBlock",
    "Upsampler",
    "upsampler_stage_factors",
    "RecurrentEDSR",
    "EDSR",
    "EDSRConfig",
    "EDSR_PAPER",
    "EDSR_BASELINE",
    "EDSR_PAPER_TEXT",
    "EDSR_TINY",
    "SRCNN",
    "SRResNet",
    "ResNet",
    "ResNetConfig",
    "RESNET50",
    "RESNET_TINY",
    "bicubic_upscale",
    "LayerCost",
    "GradientTensor",
    "ModelCostModel",
    "TrainingMemoryModel",
    "get_model_cost",
    "get_scenario_cost",
    "list_model_costs",
]
