"""SRResNet (Ledig et al. 2017): the BN-bearing predecessor EDSR improves on.

Kept as a baseline to demonstrate the architectural lineage in the paper's
Fig. 5a: same residual topology as EDSR but with batch normalization and
without residual scaling.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import functional as F
from repro.tensor.nn import Conv2d, Module
from repro.tensor.tensor import Tensor
from repro.models.blocks import ResBlock, Upsampler


class SRResNet(Module):
    def __init__(
        self,
        *,
        n_resblocks: int = 16,
        n_feats: int = 64,
        scale: int = 2,
        n_colors: int = 3,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.head = Conv2d(n_colors, n_feats, 9, rng=rng)
        self.body = [
            ResBlock(n_feats, 3, batch_norm=True, rng=rng) for _ in range(n_resblocks)
        ]
        for i, block in enumerate(self.body):
            setattr(self, f"block{i}", block)
        self.body_conv = Conv2d(n_feats, n_feats, 3, rng=rng)
        self.upsampler = Upsampler(scale, n_feats, rng=rng)
        self.tail = Conv2d(n_feats, n_colors, 9, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = F.relu(self.head(x))
        skip = x
        for block in self.body:
            x = block(x)
        x = F.add(self.body_conv(x), skip)
        x = self.upsampler(x)
        return self.tail(x)
