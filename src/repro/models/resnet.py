"""ResNet for the Fig. 1 comparison (classification vs. super-resolution).

The paper contrasts EDSR's ~10.3 img/s with ResNet-50's ~360 img/s on one
V100.  We provide a functional (tiny, trainable) variant for tests and the
full ResNet-50 *cost structure* for the throughput model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.tensor import functional as F
from repro.tensor.nn import BatchNorm2d, Conv2d, Linear, Module
from repro.tensor.tensor import Tensor


@dataclass(frozen=True)
class ResNetConfig:
    """Stage layout: (bottleneck width, block count, stride) per stage."""

    name: str
    stem_channels: int
    stages: tuple[tuple[int, int, int], ...]
    num_classes: int = 1000
    image_size: int = 224

    def __post_init__(self) -> None:
        if not self.stages:
            raise ConfigError("ResNet needs at least one stage")


RESNET50 = ResNetConfig(
    name="resnet-50",
    stem_channels=64,
    stages=((64, 3, 1), (128, 4, 2), (256, 6, 2), (512, 3, 2)),
)

#: runnable-in-numpy configuration for functional tests
RESNET_TINY = ResNetConfig(
    name="resnet-tiny",
    stem_channels=8,
    stages=((8, 1, 1), (16, 1, 2)),
    num_classes=10,
    image_size=32,
)


class Bottleneck(Module):
    """1x1 reduce -> 3x3 -> 1x1 expand (x4), with projection shortcut."""

    expansion = 4

    def __init__(
        self,
        in_channels: int,
        width: int,
        stride: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        out_channels = width * self.expansion
        self.conv1 = Conv2d(in_channels, width, 1, padding=0, rng=rng)
        self.bn1 = BatchNorm2d(width)
        self.conv2 = Conv2d(width, width, 3, stride=stride, rng=rng)
        self.bn2 = BatchNorm2d(width)
        self.conv3 = Conv2d(width, out_channels, 1, padding=0, rng=rng)
        self.bn3 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.proj = Conv2d(
                in_channels, out_channels, 1, stride=stride, padding=0, rng=rng
            )
        else:
            self.proj = None
        self.out_channels = out_channels

    def forward(self, x: Tensor) -> Tensor:
        identity = x if self.proj is None else self.proj(x)
        h = F.relu(self.bn1(self.conv1(x)))
        h = F.relu(self.bn2(self.conv2(h)))
        h = self.bn3(self.conv3(h))
        return F.relu(F.add(h, identity))


class ResNet(Module):
    def __init__(
        self,
        config: ResNetConfig = RESNET_TINY,
        *,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.config = config
        self.stem = Conv2d(3, config.stem_channels, 7, stride=2, padding=3, rng=rng)
        self.stem_bn = BatchNorm2d(config.stem_channels)
        blocks: list[Bottleneck] = []
        channels = config.stem_channels
        for width, count, stride in config.stages:
            for b in range(count):
                block = Bottleneck(channels, width, stride if b == 0 else 1, rng)
                blocks.append(block)
                channels = block.out_channels
        self.blocks = blocks
        for i, block in enumerate(blocks):
            setattr(self, f"block{i}", block)
        self.fc = Linear(channels, config.num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = F.relu(self.stem_bn(self.stem(x)))
        x = F.max_pool2d(x, 3, 2)
        for block in self.blocks:
            x = block(x)
        x = F.global_avg_pool2d(x)
        return self.fc(x)
