"""Named cost-model registry used by benchmarks and the scaling study."""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.models.costing import ModelCostModel
from repro.models.edsr import EDSR_BASELINE, EDSR_PAPER, EDSR_PAPER_TEXT, EDSR_TINY
from repro.models.resnet import RESNET50, RESNET_TINY
from repro.models.segmentation import segmentation_cost

_REGISTRY: dict[str, Callable[[], ModelCostModel]] = {
    "deeplabv3-rn50": segmentation_cost,
    "edsr-paper": lambda: ModelCostModel.for_edsr(EDSR_PAPER),
    "edsr-baseline": lambda: ModelCostModel.for_edsr(EDSR_BASELINE),
    "edsr-paper-text": lambda: ModelCostModel.for_edsr(EDSR_PAPER_TEXT),
    "edsr-tiny": lambda: ModelCostModel.for_edsr(EDSR_TINY),
    "resnet-50": lambda: ModelCostModel.for_resnet(RESNET50),
    "resnet-tiny": lambda: ModelCostModel.for_resnet(RESNET_TINY),
}


_EDSR_CONFIGS = {
    c.name: c for c in (EDSR_PAPER, EDSR_BASELINE, EDSR_PAPER_TEXT, EDSR_TINY)
}


def get_model_cost(name: str) -> ModelCostModel:
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown model {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory()


def get_scenario_cost(
    name: str,
    *,
    scales: tuple[int, ...],
    patch: int = 48,
    recurrent: bool = False,
) -> ModelCostModel:
    """Cost model of a registered EDSR preset under a non-default workload
    scenario (multi-scale heads, custom patch, recurrent temporal state).

    Takes plain arguments rather than a :class:`~repro.core.scenarios.
    ScenarioSpec` so the models layer never imports ``repro.core``.  Only
    EDSR presets have scenario variants; other registered models are
    single-workload by construction.
    """
    config = _EDSR_CONFIGS.get(name)
    if config is None:
        raise ConfigError(
            f"model {name!r} has no scenario-parameterized cost structure; "
            f"EDSR presets only ({sorted(_EDSR_CONFIGS)})"
        )
    return ModelCostModel.for_edsr_multi(
        config, tuple(scales), patch=patch, recurrent=recurrent, name=name
    )


def list_model_costs() -> list[str]:
    return sorted(_REGISTRY)
