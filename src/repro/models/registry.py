"""Named cost-model registry used by benchmarks and the scaling study."""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.models.costing import ModelCostModel
from repro.models.edsr import EDSR_BASELINE, EDSR_PAPER, EDSR_PAPER_TEXT, EDSR_TINY
from repro.models.resnet import RESNET50, RESNET_TINY
from repro.models.segmentation import segmentation_cost

_REGISTRY: dict[str, Callable[[], ModelCostModel]] = {
    "deeplabv3-rn50": segmentation_cost,
    "edsr-paper": lambda: ModelCostModel.for_edsr(EDSR_PAPER),
    "edsr-baseline": lambda: ModelCostModel.for_edsr(EDSR_BASELINE),
    "edsr-paper-text": lambda: ModelCostModel.for_edsr(EDSR_PAPER_TEXT),
    "edsr-tiny": lambda: ModelCostModel.for_edsr(EDSR_TINY),
    "resnet-50": lambda: ModelCostModel.for_resnet(RESNET50),
    "resnet-tiny": lambda: ModelCostModel.for_resnet(RESNET_TINY),
}


def get_model_cost(name: str) -> ModelCostModel:
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown model {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory()


def list_model_costs() -> list[str]:
    return sorted(_REGISTRY)
