"""Analytic cost structure of the models (FLOPs, memory, gradient schedule).

The paper-scale EDSR (~43 M parameters, ~185 GFLOP forward per 48x48 LR
patch) cannot be executed in numpy at simulation speed, so the performance
path works on the model's *cost structure*:

* per-layer forward FLOPs and activation bytes -> GPU step time and the
  Fig. 9 memory curve;
* per-parameter-tensor gradient sizes in backward order with readiness
  fractions -> the tensor stream Horovod's fusion packs into messages,
  which in turn produces the Table I / Fig. 14 message-size distribution.

Consistency between this analytic description and the real (tiny) models is
enforced by tests: ``ModelCostModel.for_edsr(EDSR_TINY).total_params`` must
equal ``EDSR(EDSR_TINY).num_parameters()`` exactly, and likewise per layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.specs import GpuSpec
from repro.models.blocks import upsampler_stage_factors
from repro.models.edsr import EDSRConfig
from repro.models.resnet import Bottleneck, ResNetConfig


@dataclass(frozen=True)
class LayerCost:
    """One parameterized layer's contribution (per image)."""

    name: str
    params: int
    flops_forward: float
    activation_bytes: int
    bias_params: int = 0
    # Output channels (feature width).  Tensor parallelism shards a layer
    # along this dimension, so a layer is tp-shardable iff ``tp`` divides
    # ``cout``; 0 marks layers with no channel structure (never sharded).
    cout: int = 0

    @property
    def param_bytes(self) -> int:
        return self.params * 4  # fp32

    @property
    def weight_params(self) -> int:
        return self.params - self.bias_params


@dataclass(frozen=True)
class GradientTensor:
    """One gradient message produced during the backward pass.

    ``ready_fraction`` is the fraction of total backward compute completed
    when this tensor's gradient becomes available (backward visits layers
    in reverse; the tail's gradients are ready almost immediately, the
    head's last).
    """

    name: str
    nbytes: int
    ready_fraction: float


def _conv_cost(
    name: str, cin: int, cout: int, k: int, h: int, w: int, *, bias: bool = True
) -> LayerCost:
    params = cout * cin * k * k + (cout if bias else 0)
    flops = 2.0 * h * w * cin * cout * k * k
    act = h * w * cout * 4
    return LayerCost(
        name, params, flops, act, bias_params=cout if bias else 0, cout=cout
    )


def _linear_cost(name: str, cin: int, cout: int) -> LayerCost:
    return LayerCost(name, cin * cout + cout, 2.0 * cin * cout, cout * 4,
                     bias_params=cout, cout=cout)


def upsampler_plan(
    config: EDSRConfig, scale: int, h: int, w: int, *, prefix: str = ""
) -> tuple[list[LayerCost], int, int]:
    """Per-stage costs of one sub-pixel upsampler head, validated.

    Prices exactly the structure :class:`~repro.models.blocks.Upsampler`
    builds — one ``r^2 x``-channel conv plus pixel shuffle per stage — and
    raises a typed :class:`~repro.errors.ConfigError` for any factor
    outside the supported set (the old ``scale // 2`` loop silently
    mis-priced odd scales).  Returns the stage layers and the upscaled
    (h, w).
    """
    layers: list[LayerCost] = []
    k = config.kernel_size
    for i, r in enumerate(upsampler_stage_factors(scale)):
        layers.append(
            _conv_cost(
                f"{prefix}upsampler.conv{i}",
                config.n_feats, r * r * config.n_feats, k, h, w,
            )
        )
        h, w = h * r, w * r
    return layers, h, w


def temporal_state_bytes(config: EDSRConfig, patch: int = 48) -> int:
    """Per-image bytes of the carried inter-frame hidden state (fp32)."""
    return config.n_feats * patch * patch * 4


class ModelCostModel:
    """Cost structure plus throughput-model coefficients for one model."""

    def __init__(
        self,
        name: str,
        layers: list[LayerCost],
        *,
        peak_utilization: float,
        batch_half_point: float,
        kernels_per_layer: float = 3.0,
    ):
        if not layers:
            raise ConfigError("model must have at least one layer")
        if not 0 < peak_utilization <= 1:
            raise ConfigError(f"peak_utilization must be in (0,1], got {peak_utilization}")
        self.name = name
        self.layers = layers
        self.peak_utilization = peak_utilization
        self.batch_half_point = batch_half_point
        self.kernels_per_layer = kernels_per_layer

    # -- constructors -----------------------------------------------------------
    @classmethod
    def for_edsr(
        cls, config: EDSRConfig, *, patch: int = 48
    ) -> "ModelCostModel":
        """Cost structure of EDSR at the given LR patch size."""
        c = config
        h = w = patch
        k = c.kernel_size
        layers = [_conv_cost("head", c.n_colors, c.n_feats, k, h, w)]
        for b in range(c.n_resblocks):
            layers.append(_conv_cost(f"block{b}.conv1", c.n_feats, c.n_feats, k, h, w))
            layers.append(_conv_cost(f"block{b}.conv2", c.n_feats, c.n_feats, k, h, w))
        layers.append(_conv_cost("body_conv", c.n_feats, c.n_feats, k, h, w))
        head_layers, h, w = upsampler_plan(c, c.scale, h, w)
        layers.extend(head_layers)
        layers.append(_conv_cost("tail", c.n_feats, c.n_colors, k, h, w))
        # Wide 48x48 conv stacks fill the V100 well even at small batch;
        # coefficients calibrated so batch 4 reproduces the paper's 10.3 img/s.
        return cls(
            config.name, layers, peak_utilization=0.41, batch_half_point=0.4
        )

    @classmethod
    def for_edsr_multi(
        cls,
        config: EDSRConfig,
        scales: tuple[int, ...],
        *,
        patch: int = 48,
        recurrent: bool = False,
        name: str | None = None,
    ) -> "ModelCostModel":
        """Multi-scale (and optionally recurrent) EDSR cost structure.

        One shared trunk (head + residual body) feeds one sub-pixel
        upsampler head per requested scale — the heads' layers are
        prefixed ``x<scale>.`` so gradient tensors stay distinguishable in
        the fusion stream.  ``recurrent`` adds the temporal fusion conv
        (previous hidden state concatenated onto the trunk features, 2F ->
        F at LR resolution) that carries state between video frames; its
        activation is exactly the inter-frame hidden state, so the memory
        model prices the carried state automatically.

        Single-scale, non-recurrent, 48-patch calls reduce to the same
        trunk arithmetic as :meth:`for_edsr`; the degenerate workload spec
        routes through the registered :meth:`for_edsr` model unchanged.
        """
        if not scales:
            raise ConfigError("for_edsr_multi needs at least one scale")
        c = config
        h = w = patch
        k = c.kernel_size
        layers = [_conv_cost("head", c.n_colors, c.n_feats, k, h, w)]
        for b in range(c.n_resblocks):
            layers.append(_conv_cost(f"block{b}.conv1", c.n_feats, c.n_feats, k, h, w))
            layers.append(_conv_cost(f"block{b}.conv2", c.n_feats, c.n_feats, k, h, w))
        layers.append(_conv_cost("body_conv", c.n_feats, c.n_feats, k, h, w))
        if recurrent:
            layers.append(
                _conv_cost("temporal.fuse", 2 * c.n_feats, c.n_feats, k, h, w)
            )
        for scale in scales:
            head_layers, sh, sw = upsampler_plan(
                c, scale, h, w, prefix=f"x{scale}."
            )
            layers.extend(head_layers)
            layers.append(
                _conv_cost(f"x{scale}.tail", c.n_feats, c.n_colors, k, sh, sw)
            )
        return cls(
            name or config.name, layers,
            peak_utilization=0.41, batch_half_point=0.4,
        )

    @classmethod
    def for_resnet(cls, config: ResNetConfig) -> "ModelCostModel":
        """Cost structure of a bottleneck ResNet at its native image size."""
        size = config.image_size
        layers = [_conv_cost("stem", 3, config.stem_channels, 7, size // 2, size // 2)]
        h = w = size // 4  # stem stride 2 + maxpool stride 2
        cin = config.stem_channels
        for s, (width, count, stage_stride) in enumerate(config.stages):
            for b in range(count):
                stride = stage_stride if b == 0 else 1
                h_out, w_out = h // stride, w // stride
                cout = width * Bottleneck.expansion
                prefix = f"stage{s}.block{b}"
                layers.append(_conv_cost(f"{prefix}.conv1", cin, width, 1, h, w))
                layers.append(_conv_cost(f"{prefix}.conv2", width, width, 3, h_out, w_out))
                layers.append(_conv_cost(f"{prefix}.conv3", width, cout, 1, h_out, w_out))
                if stride != 1 or cin != cout:
                    layers.append(_conv_cost(f"{prefix}.proj", cin, cout, 1, h_out, w_out))
                cin = cout
                h, w = h_out, w_out
        layers.append(_linear_cost("fc", cin, config.num_classes))
        # cuDNN's Winograd kernels push 3x3-conv efficiency well above the
        # naive-FLOP utilization; calibrated so batch 32 gives the paper's
        # ~360 img/s on a V100 (Fig. 1).
        return cls(
            config.name, layers, peak_utilization=0.63, batch_half_point=4.0,
            kernels_per_layer=5.0,
        )

    # -- aggregates ------------------------------------------------------------------
    @property
    def total_params(self) -> int:
        return sum(l.params for l in self.layers)

    @property
    def param_bytes(self) -> int:
        return self.total_params * 4

    @property
    def gradient_bytes(self) -> int:
        return self.param_bytes

    @property
    def flops_forward(self) -> float:
        """Per image."""
        return sum(l.flops_forward for l in self.layers)

    @property
    def flops_backward(self) -> float:
        """Per image (standard 2x forward: grads wrt inputs and weights)."""
        return 2.0 * self.flops_forward

    @property
    def flops_train(self) -> float:
        return self.flops_forward + self.flops_backward

    @property
    def activation_bytes_per_image(self) -> int:
        return sum(l.activation_bytes for l in self.layers)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    # -- gradient message schedule ------------------------------------------------------
    def gradient_schedule(self) -> list[GradientTensor]:
        """Per-tensor gradients in the order backward emits them.

        Weight and bias are distinct tensors (they are distinct allreduce
        requests in Horovod until fusion merges them).
        """
        total_back = self.flops_backward
        tensors: list[GradientTensor] = []
        done = 0.0
        for layer in reversed(self.layers):
            done += 2.0 * layer.flops_forward
            fraction = min(1.0, done / total_back)
            tensors.append(
                GradientTensor(f"{layer.name}.weight", layer.weight_params * 4, fraction)
            )
            if layer.bias_params:
                tensors.append(
                    GradientTensor(f"{layer.name}.bias", layer.bias_params * 4, fraction)
                )
        return tensors


class TrainingMemoryModel:
    """Device-memory footprint of training (drives Fig. 9's OOM edge)."""

    #: bytes of im2col/GEMM workspace per image (two rotating column buffers)
    def __init__(
        self,
        cost: ModelCostModel,
        *,
        optimizer_state_bytes_per_param: int = 8,  # Adam: two fp32 moments
        workspace_factor: float = 0.15,
    ):
        self.cost = cost
        self.optimizer_state_bytes_per_param = optimizer_state_bytes_per_param
        self.workspace_factor = workspace_factor

    def fixed_bytes(self) -> int:
        """Parameters + gradients + optimizer state (batch-independent)."""
        return (
            self.cost.param_bytes
            + self.cost.gradient_bytes
            + self.cost.total_params * self.optimizer_state_bytes_per_param
        )

    def per_image_bytes(self) -> int:
        act = self.cost.activation_bytes_per_image
        return int(act * (1.0 + self.workspace_factor))

    def bytes_required(self, batch: int) -> int:
        if batch < 1:
            raise ConfigError(f"batch must be >= 1, got {batch}")
        return self.fixed_bytes() + batch * self.per_image_bytes()

    def max_batch(self, available_bytes: int) -> int:
        """Largest batch that fits in ``available_bytes`` (0 if none)."""
        spare = available_bytes - self.fixed_bytes()
        if spare < self.per_image_bytes():
            return 0
        return spare // self.per_image_bytes()


class ThroughputModel:
    """Maps (model cost, GPU, batch) to step time and images/second."""

    def __init__(self, cost: ModelCostModel, gpu: GpuSpec):
        self.cost = cost
        self.gpu = gpu

    def utilization(self, batch: int) -> float:
        """Saturating occupancy curve: small batches under-fill the SMs."""
        if batch < 1:
            raise ConfigError(f"batch must be >= 1, got {batch}")
        u = self.cost.peak_utilization * batch / (batch + self.cost.batch_half_point)
        return u

    def step_time(self, batch: int) -> float:
        """One training iteration (forward + backward), seconds."""
        flops = self.cost.flops_train * batch
        effective = self.gpu.peak_fp32_flops * self.utilization(batch)
        launch = (
            self.cost.num_layers
            * self.cost.kernels_per_layer
            * self.gpu.kernel_launch_overhead_s
        )
        return flops / effective + launch

    def inference_time(self, batch: int) -> float:
        """One forward-only (serving) pass over ``batch`` images, seconds.

        No backward pass, and roughly a third of training's kernel count
        (no weight-gradient or input-gradient kernels).
        """
        flops = self.cost.flops_forward * batch
        effective = self.gpu.peak_fp32_flops * self.utilization(batch)
        launch = (
            self.cost.num_layers
            * self.cost.kernels_per_layer
            * self.gpu.kernel_launch_overhead_s
        ) / 3.0
        return flops / effective + launch

    def inferences_per_second(self, batch: int) -> float:
        return batch / self.inference_time(batch)

    def forward_time(self, batch: int) -> float:
        return self.step_time(batch) / 3.0

    def backward_time(self, batch: int) -> float:
        return self.step_time(batch) * 2.0 / 3.0

    def images_per_second(self, batch: int) -> float:
        return batch / self.step_time(batch)
