"""Building blocks shared by the SR models (paper Fig. 5a).

The EDSR residual block differs from ResNet/SRResNet blocks by *removing
batch normalization* and scaling the residual branch by a constant
(``res_scale``, 0.1 in the paper's training setup) to stabilize training of
wide models.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.tensor import functional as F
from repro.tensor.nn import BatchNorm2d, Conv2d, Module
from repro.tensor.tensor import Tensor

#: upscale factors the sub-pixel upsampler supports: powers of two stack
#: log2(s) 4x pixel-shuffle stages, 3 uses a single 9x stage.  The cost
#: model (:func:`repro.models.costing.upsampler_plan`) prices exactly
#: this structure, so anything outside the set is a typed ConfigError in
#: both worlds rather than a silent mis-pricing.
SUPPORTED_SCALES = (2, 3, 4, 8)


def upsampler_stage_factors(scale: int) -> tuple[int, ...]:
    """Pixel-shuffle factor of each upsampler stage, head to tail.

    Raises :class:`~repro.errors.ConfigError` for unsupported factors —
    odd scales other than 3 have no sub-pixel decomposition here, and the
    old ``scale // 2`` stage count silently mis-priced them.
    """
    if scale not in SUPPORTED_SCALES:
        raise ConfigError(
            f"unsupported upscale factor {scale}; supported scales are "
            f"{SUPPORTED_SCALES}"
        )
    if scale == 3:
        return (3,)
    # power of two: log2(scale) stages of x2
    return (2,) * (scale.bit_length() - 1)


class ResBlock(Module):
    """EDSR residual block: conv-ReLU-conv, scaled, plus identity."""

    def __init__(
        self,
        n_feats: int,
        kernel_size: int = 3,
        *,
        res_scale: float = 1.0,
        batch_norm: bool = False,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if not 0 < res_scale <= 1:
            raise ConfigError(f"res_scale must be in (0,1], got {res_scale}")
        rng = rng or np.random.default_rng(0)
        self.res_scale = res_scale
        self.conv1 = Conv2d(n_feats, n_feats, kernel_size, rng=rng)
        self.conv2 = Conv2d(n_feats, n_feats, kernel_size, rng=rng)
        self.bn1 = BatchNorm2d(n_feats) if batch_norm else None
        self.bn2 = BatchNorm2d(n_feats) if batch_norm else None

    def forward(self, x: Tensor) -> Tensor:
        h = self.conv1(x)
        if self.bn1 is not None:
            h = self.bn1(h)
        h = F.relu(h)
        h = self.conv2(h)
        if self.bn2 is not None:
            h = self.bn2(h)
        if self.res_scale != 1.0:
            h = F.mul(h, self.res_scale)
        return F.add(h, x)


class Upsampler(Module):
    """Sub-pixel upsampler tail: conv to ``r^2 x`` channels + pixel shuffle.

    Scale 2 and 3 use one stage; powers of two stack log2(scale) x2
    stages (scale 4 as in the reference EDSR implementation, scale 8 one
    stage deeper).  The supported set is :data:`SUPPORTED_SCALES`.
    """

    def __init__(
        self,
        scale: int,
        n_feats: int,
        *,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        stages: list[tuple[Conv2d, int]] = []
        for r in upsampler_stage_factors(scale):
            stages.append((Conv2d(n_feats, r * r * n_feats, 3, rng=rng), r))
        self._stages = stages
        for i, (conv, _r) in enumerate(stages):
            setattr(self, f"conv{i}", conv)
        self.scale = scale

    def forward(self, x: Tensor) -> Tensor:
        for conv, r in self._stages:
            x = F.pixel_shuffle(conv(x), r)
        return x


class MeanShift(Module):
    """Adds/subtracts the dataset RGB mean (EDSR pre/post-processing)."""

    def __init__(self, rgb_mean: tuple[float, float, float], sign: int = -1):
        super().__init__()
        if sign not in (-1, 1):
            raise ConfigError(f"sign must be +-1, got {sign}")
        self.shift = np.asarray(rgb_mean, dtype=np.float32).reshape(1, 3, 1, 1) * sign

    def forward(self, x: Tensor) -> Tensor:
        return F.add(x, Tensor(self.shift))
