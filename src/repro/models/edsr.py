"""EDSR: Enhanced Deep Super-Resolution network (Lim et al., CVPR-W 2017).

Architecture (paper Fig. 5b): head conv -> B residual blocks (no BN,
residual scaling) -> skip-connected body conv -> sub-pixel upsampler ->
output conv.

Configuration note (documented deviation, DESIGN.md §1): the paper's §IV-C
says "32 residual blocks and 64 feature maps" but trains with residual
scaling 0.1 and reports fused allreduce messages of 16-64 MB (Table I),
both of which match the *full* EDSR (B=32, F=256, ~43 M parameters).  We
provide both presets; benchmarks default to :data:`EDSR_PAPER`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.tensor import functional as F
from repro.tensor.nn import Conv2d, Module
from repro.tensor.tensor import Tensor
from repro.models.blocks import SUPPORTED_SCALES, MeanShift, ResBlock, Upsampler

#: DIV2K channel means in [0,1] range (reference implementation values)
DIV2K_RGB_MEAN = (0.4488, 0.4371, 0.4040)


@dataclass(frozen=True)
class EDSRConfig:
    """Hyperparameters of one EDSR instantiation."""

    name: str
    n_resblocks: int = 32
    n_feats: int = 256
    scale: int = 2
    res_scale: float = 0.1
    n_colors: int = 3
    kernel_size: int = 3

    def __post_init__(self) -> None:
        if self.n_resblocks < 1:
            raise ConfigError("n_resblocks must be >= 1")
        if self.n_feats < 1:
            raise ConfigError("n_feats must be >= 1")
        if self.scale not in SUPPORTED_SCALES:
            raise ConfigError(
                f"scale must be one of {SUPPORTED_SCALES}, got {self.scale}"
            )


#: full EDSR, consistent with the paper's Table I message sizes
EDSR_PAPER = EDSRConfig(name="edsr-paper", n_resblocks=32, n_feats=256, res_scale=0.1)

#: EDSR-baseline from the EDSR paper
EDSR_BASELINE = EDSRConfig(
    name="edsr-baseline", n_resblocks=16, n_feats=64, res_scale=1.0
)

#: the literal configuration stated in the paper's §IV-C text
EDSR_PAPER_TEXT = EDSRConfig(
    name="edsr-paper-text", n_resblocks=32, n_feats=64, res_scale=0.1
)

#: tiny configuration for real (functional) training in tests and examples
EDSR_TINY = EDSRConfig(name="edsr-tiny", n_resblocks=2, n_feats=8, res_scale=1.0)


class EDSR(Module):
    """Trainable EDSR on the numpy framework."""

    def __init__(
        self,
        config: EDSRConfig = EDSR_TINY,
        *,
        rng: np.random.Generator | None = None,
        rgb_mean: tuple[float, float, float] = DIV2K_RGB_MEAN,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.config = config
        c = config
        self.sub_mean = MeanShift(rgb_mean, sign=-1)
        self.add_mean = MeanShift(rgb_mean, sign=+1)
        self.head = Conv2d(c.n_colors, c.n_feats, c.kernel_size, rng=rng)
        self.body = [
            ResBlock(c.n_feats, c.kernel_size, res_scale=c.res_scale, rng=rng)
            for _ in range(c.n_resblocks)
        ]
        for i, block in enumerate(self.body):
            setattr(self, f"block{i}", block)
        self.body_conv = Conv2d(c.n_feats, c.n_feats, c.kernel_size, rng=rng)
        self.upsampler = Upsampler(c.scale, c.n_feats, rng=rng)
        self.tail = Conv2d(c.n_feats, c.n_colors, c.kernel_size, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.sub_mean(x)
        x = self.head(x)
        skip = x
        for block in self.body:
            x = block(x)
        x = F.add(self.body_conv(x), skip)
        x = self.upsampler(x)
        x = self.tail(x)
        return self.add_mean(x)

    def upscale(self, lr_image: np.ndarray) -> np.ndarray:
        """Inference convenience: (C,H,W) or (N,C,H,W) float image(s)."""
        from repro.tensor.tensor import no_grad

        single = lr_image.ndim == 3
        batch = lr_image[None] if single else lr_image
        self.eval()
        with no_grad():
            out = self.forward(Tensor(batch.astype(np.float32))).numpy()
        self.train()
        return out[0] if single else out
