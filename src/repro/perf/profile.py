"""First-class cProfile wrapping for the CLI.

``python -m repro --profile <subcommand> ...`` routes the subcommand
through :func:`profiled_call`, which writes a binary pstats dump (loadable
with ``python -m pstats`` or snakeviz) and prints the top-N functions by
cumulative time — so every future perf PR starts from a profile instead of
a guess.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Callable


def profiled_call(
    func: Callable[..., Any],
    *args,
    out_path: str = "repro-profile.pstats",
    top: int = 25,
    **kwargs,
) -> tuple[Any, str]:
    """Run ``func`` under cProfile; returns (result, report text)."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = func(*args, **kwargs)
    finally:
        profiler.disable()
    profiler.dump_stats(out_path)
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative")
    stats.print_stats(top)
    report = (
        f"[profile] pstats dump written to {out_path}\n"
        f"[profile] top {top} by cumulative time:\n{buf.getvalue()}"
    )
    return result, report
