"""Performance layer: result caching, steady-state extrapolation, parallel
sweeps, and runtime fast-path toggles.

The scaling sweeps behind Figs. 10-13 are embarrassingly parallel and
heavily repetitive — training steps are identical in performance mode, and
the same (scenario, gpu_count) points are re-simulated by every figure.
This package exploits both:

* :mod:`repro.perf.digest` — canonical content digests of run
  configurations (scenario, model, world size, env knobs, fault plan,
  code-version salt);
* :mod:`repro.perf.cache` — content-addressed on-disk cache of
  :class:`~repro.core.study.ScalingPoint` results with explicit
  invalidation;
* :mod:`repro.perf.steady` — steady-state detection over per-step times
  so converged runs extrapolate instead of simulating every step;
* :mod:`repro.perf.parallel` — dispatches independent sweep points across
  worker processes with a deterministic merge;
* :mod:`repro.perf.flags` — runtime toggles for the sim-engine fast paths
  (uncontended-link collapse, collective-schedule memoization), used by
  the equivalence tests to compare fast vs. slow paths;
* :mod:`repro.perf.profile` — first-class cProfile wrapping for the CLI.

See ``docs/performance.md`` for the caching/extrapolation model and the
validity conditions of each fast path.
"""

from repro.perf import flags
from repro.perf.cache import ResultCache, default_cache_dir
from repro.perf.digest import CACHE_VERSION_SALT, canonical_digest, env_knobs
from repro.perf.parallel import PointJob, run_point_jobs, run_scenario_sweeps
from repro.perf.profile import profiled_call
from repro.perf.steady import SteadyStateDetector

__all__ = [
    "flags",
    "ResultCache",
    "default_cache_dir",
    "CACHE_VERSION_SALT",
    "canonical_digest",
    "env_knobs",
    "PointJob",
    "run_point_jobs",
    "run_scenario_sweeps",
    "profiled_call",
    "SteadyStateDetector",
]
