"""Canonical content digests of run configurations.

A sweep point's result is fully determined by (scenario, model config,
world size, batch, env knobs, fault plan, code version).  ``canonical_digest``
reduces any composition of dataclasses, enums, and plain containers to a
stable JSON form and hashes it, giving the content address the on-disk
result cache is keyed by.

Two properties matter and are tested:

* **stability** — the same logical configuration always digests the same,
  across processes and dict orderings;
* **sensitivity** — any knob change (an ``MV2_*``/``HOROVOD_*`` env var, a
  fault plan, a model preset, a tolerance) changes the digest, so stale
  cache entries can never be returned for a different configuration.

``CACHE_VERSION_SALT`` is folded into every digest; bump it whenever the
simulator's timing semantics change so old caches invalidate wholesale.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from typing import Any, Mapping

from repro.errors import ConfigError

#: bump on any change to the simulator's timing semantics — this is the
#: explicit whole-cache invalidation lever (plus ``ResultCache.clear``).
CACHE_VERSION_SALT = "repro-perf-v9"

#: environment prefixes that can change simulated results and therefore
#: participate in the digest
_ENV_PREFIXES = ("MV2_", "HOROVOD_", "REPRO_SIM_")


def env_knobs(env: Mapping[str, str] | None = None) -> dict[str, str]:
    """The subset of the environment that can affect simulated results."""
    env = os.environ if env is None else env
    return {
        k: v for k, v in sorted(env.items()) if k.startswith(_ENV_PREFIXES)
    }


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-encodable canonical form."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips exactly; avoids json float formatting surprises
        return {"__float__": repr(obj)}
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "value": obj.value}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__name__, "fields": fields}
    if isinstance(obj, (list, tuple)):
        return [_canonical(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(json.dumps(_canonical(x)) for x in obj)}
    if isinstance(obj, Mapping):
        items = sorted(
            (json.dumps(_canonical(k), sort_keys=True), _canonical(v))
            for k, v in obj.items()
        )
        return {"__mapping__": items}
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    # objects with no fields still carry identity through their class name
    # (device-visibility policies are stateless singletons of distinct types)
    if hasattr(obj, "__dict__") or hasattr(type(obj), "__slots__"):
        state = {
            k: _canonical(v)
            for k, v in sorted(vars(obj).items())
        } if hasattr(obj, "__dict__") else {}
        return {"__object__": type(obj).__name__, "state": state}
    raise ConfigError(f"cannot canonicalize {type(obj).__name__!r} for digest")


def canonical_json(obj: Any) -> str:
    """Stable JSON form of ``obj`` (the digest preimage)."""
    return json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))


def canonical_digest(obj: Any, *, salt: str = CACHE_VERSION_SALT) -> str:
    """SHA-256 content digest of ``obj``'s canonical form."""
    h = hashlib.sha256()
    h.update(salt.encode())
    h.update(b"\x00")
    h.update(canonical_json(obj).encode())
    return h.hexdigest()
