"""Parallel sweep runner: independent points across worker processes.

A scaling sweep is a bag of independent (scenario, gpu_count) simulations;
this module fans them out over a :class:`~concurrent.futures.
ProcessPoolExecutor` and merges results deterministically (submission
order — worker completion order never leaks into the output).

The result cache is consulted and populated in the *parent* process only:
workers stay cache-blind, so there are no cross-process file races and a
warm cache short-circuits before any worker spawns.

Imports of :mod:`repro.core` are deferred into the functions — the study
module imports this one for ``ScalingStudy.run(jobs=...)``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.study import ScalingPoint, StudyConfig
    from repro.perf.cache import ResultCache


@dataclass(frozen=True)
class PointJob:
    """One sweep point, addressed by scenario *name* (cheap to pickle).

    ``fault_plan`` / ``recovery`` (both frozen dataclasses) ride along so
    chaos sweeps parallelize identically to clean ones — workers rebuild
    the exact resilient study, and the digest covers both fields.
    ``comm_tables`` carries the parent's active algorithm-selection
    tables (as :meth:`~repro.comm.selection.SelectionTable.to_payload`
    dicts) so workers route collectives through the same tuned tables —
    and the point digest covers their digests.
    """

    scenario: str
    num_gpus: int
    config: "StudyConfig"
    fault_plan: object | None = None
    recovery: object | None = None
    comm_tables: tuple | None = None


def _build_study(job: PointJob) -> "ScalingStudy":
    from repro.core.scenarios import scenario_by_name
    from repro.core.study import ScalingStudy

    return ScalingStudy(
        scenario_by_name(job.scenario),
        job.config,
        fault_plan=job.fault_plan,
        recovery=job.recovery,
    )


def _execute(job: PointJob) -> "ScalingPoint":
    """Worker entry point (module level so it pickles under spawn)."""
    if job.comm_tables:
        from repro.comm.selection import install_table_payloads

        install_table_payloads(job.comm_tables)
    return _build_study(job).run_point(job.num_gpus)


def active_table_payloads() -> tuple | None:
    """The parent's active selection tables as picklable payload dicts."""
    from repro.comm.selection import active_tables

    tables = active_tables()
    if not tables:
        return None
    return tuple(tables[k].to_payload() for k in sorted(tables))


def default_jobs() -> int:
    return max(1, os.cpu_count() or 1)


def run_point_jobs(
    jobs: Sequence[PointJob],
    *,
    workers: int | None = None,
    cache: "ResultCache | None" = None,
) -> list["ScalingPoint"]:
    """Run every job; returns results in input order.

    ``workers=1`` (or a single job) runs inline — same code path the
    equivalence tests compare against, no pool overhead.
    """
    workers = default_jobs() if workers is None else workers
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")

    results: dict[int, "ScalingPoint"] = {}
    pending: list[tuple[int, PointJob]] = []
    digests: dict[int, str] = {}
    for i, job in enumerate(jobs):
        if cache is not None and cache.enabled:
            digest = _build_study(job).point_digest(job.num_gpus)
            digests[i] = digest
            hit = cache.get(digest)
            if hit is not None:
                from repro.core.study import point_from_payload

                results[i] = point_from_payload(hit)
                continue
        pending.append((i, job))

    if pending:
        if workers == 1 or len(pending) == 1:
            computed = [_execute(job) for _, job in pending]
        else:
            with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
                computed = list(pool.map(_execute, [job for _, job in pending]))
        for (i, _job), point in zip(pending, computed):
            results[i] = point
            if cache is not None and cache.enabled:
                from repro.core.study import point_payload

                cache.put(digests[i], point_payload(point))

    return [results[i] for i in range(len(jobs))]


def run_scenario_sweeps(
    scenario_names: Sequence[str],
    gpu_counts: Sequence[int],
    config: "StudyConfig",
    *,
    workers: int | None = None,
    cache: "ResultCache | None" = None,
) -> dict[str, list["ScalingPoint"]]:
    """Full cross product (scenario x gpu_count) through one worker pool.

    Efficiency is attached per scenario exactly as
    :meth:`~repro.core.study.ScalingStudy.run` does, so figure-level
    assertions hold on the merged output.
    """
    from repro.core.scenarios import scenario_by_name
    from repro.core.study import ScalingStudy

    tables = active_table_payloads()
    jobs = [
        PointJob(name, gpus, config, comm_tables=tables)
        for name in scenario_names
        for gpus in gpu_counts
    ]
    flat = run_point_jobs(jobs, workers=workers, cache=cache)
    out: dict[str, list["ScalingPoint"]] = {}
    i = 0
    for name in scenario_names:
        study = ScalingStudy(scenario_by_name(name), config)
        base = study.single_gpu_rate()
        points = flat[i : i + len(gpu_counts)]
        i += len(gpu_counts)
        for point in points:
            point.efficiency = point.images_per_second / (point.num_gpus * base)
        out[name] = points
    return out
