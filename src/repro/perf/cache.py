"""Content-addressed on-disk result cache.

Entries are JSON payloads stored one-file-per-digest under a cache
directory (default ``~/.cache/repro-perf``, overridable via
``REPRO_PERF_CACHE_DIR`` or the constructor).  The digest — produced by
:mod:`repro.perf.digest` — is the whole key: a hit can only ever return a
payload produced by an identical configuration under the same code-version
salt, which is what makes cached sweep points byte-identical to freshly
simulated ones.

Invalidation is explicit: :meth:`ResultCache.clear` wipes the directory,
and bumping :data:`~repro.perf.digest.CACHE_VERSION_SALT` orphans every
old entry (they simply stop being addressed).  ``enabled=False`` (the
CLI's ``--no-cache``) turns both lookup and insert into no-ops.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

from repro.errors import ConfigError

_DIGEST_CHARS = set("0123456789abcdef")


def default_cache_dir() -> str:
    env = os.environ.get("REPRO_PERF_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-perf")


class ResultCache:
    """Digest-keyed JSON store with hit/miss statistics."""

    def __init__(self, directory: str | None = None, *, enabled: bool = True):
        self.directory = directory or default_cache_dir()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.inserts = 0

    def _path(self, digest: str) -> str:
        if len(digest) != 64 or not set(digest) <= _DIGEST_CHARS:
            raise ConfigError(f"malformed cache digest {digest!r}")
        return os.path.join(self.directory, f"{digest}.json")

    def get(self, digest: str) -> Any | None:
        """Return the cached payload for ``digest``, or ``None`` on miss."""
        if not self.enabled:
            return None
        path = self._path(digest)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            # a torn write from a crashed process counts as a miss and is
            # overwritten by the next put
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, digest: str, payload: Any) -> None:
        """Store ``payload`` under ``digest`` (atomic rename, last wins)."""
        if not self.enabled:
            return
        path = self._path(digest)
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.inserts += 1

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return 0
        for name in names:
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    def entry_count(self) -> int:
        try:
            return sum(
                1 for n in os.listdir(self.directory)
                if n.endswith(".json") and not n.startswith(".tmp-")
            )
        except FileNotFoundError:
            return 0

    def stats(self) -> dict[str, int | float]:
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "inserts": self.inserts,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "entries": self.entry_count(),
        }

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"<ResultCache {self.directory!r} {state} {self.stats()}>"
