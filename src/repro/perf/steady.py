"""Steady-state detection over per-step times.

Training steps are identical in performance mode up to the per-step
gradient jitter, so once the measured step time has converged the
remaining steps carry no information — simulating them only burns wall
clock.  The detector watches a sliding window of measured step times and
declares steady state when the window's relative spread falls inside a
tolerance; the run then *extrapolates* the remaining steps at the window
mean instead of simulating them.

Accuracy: with zero jitter the steps differ only by ulp-level float
accumulation noise (cumulative staging counters), so detection fires at
any tolerance down to ~1e-15 and the extrapolated mean matches a full
simulation to ~1e-15 relative — the equivalence tests pin that bound.
With jitter enabled the spread stays well above the default tolerance, so
detection never fires unless the caller widens ``rel_tol`` — in which
case the error is bounded by the tolerance (see ``docs/performance.md``).
"""

from __future__ import annotations

from repro.errors import ConfigError


class SteadyStateDetector:
    """Declares convergence when a window of samples agrees within tol."""

    def __init__(self, window: int = 3, rel_tol: float = 1e-9):
        if window < 2:
            raise ConfigError(f"steady-state window must be >= 2, got {window}")
        if rel_tol < 0:
            raise ConfigError(f"rel_tol must be >= 0, got {rel_tol}")
        self.window = window
        self.rel_tol = rel_tol
        self._samples: list[float] = []

    def observe(self, sample: float) -> None:
        self._samples.append(sample)

    def rearm(self) -> None:
        """Forget every sample after a world perturbation.

        A mid-run fault (rank failure, blacklist, regrow, straggler
        slowdown) changes the steady-state step time, and the first steps
        after recovery carry a transient (cache warm-up, re-formed rings).
        Without re-arming, a window straddling the perturbation could keep
        reporting the *old* converged value and poison extrapolation; after
        ``rearm`` the detector must see a fresh window of post-recovery
        samples before it converges again.
        """
        self._samples.clear()

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def converged(self) -> bool:
        """True once the last ``window`` samples agree within ``rel_tol``."""
        if len(self._samples) < self.window:
            return False
        tail = self._samples[-self.window:]
        lo, hi = min(tail), max(tail)
        if hi == lo:
            return True
        mean = sum(tail) / len(tail)
        if mean == 0.0:
            return False
        return (hi - lo) / mean <= self.rel_tol

    def steady_value(self) -> float:
        """The extrapolation value: mean of the converged window.

        When every sample in the window is bit-identical this returns
        that exact value rather than re-deriving it through a division.
        """
        if not self._samples:
            raise ConfigError("no samples observed")
        tail = self._samples[-self.window:]
        if all(s == tail[0] for s in tail):
            return tail[0]
        return sum(tail) / len(tail)
