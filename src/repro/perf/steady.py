"""Steady-state detection over per-step times.

Training steps are identical in performance mode up to the per-step
gradient jitter, so once the measured step time has converged the
remaining steps carry no information — simulating them only burns wall
clock.  The detector watches a sliding window of measured step times and
declares steady state when the window's relative spread falls inside a
tolerance; the run then *extrapolates* the remaining steps at the window
mean instead of simulating them.

Accuracy: with zero jitter the steps differ only by ulp-level float
accumulation noise (cumulative staging counters), so detection fires at
any tolerance down to ~1e-15 and the extrapolated mean matches a full
simulation to ~1e-15 relative — the equivalence tests pin that bound.
With jitter enabled the spread stays well above the default tolerance, so
detection never fires unless the caller widens ``rel_tol`` — in which
case the error is bounded by the tolerance (see ``docs/performance.md``).
"""

from __future__ import annotations

from repro.errors import ConfigError


class SteadyStateDetector:
    """Declares convergence when a window of samples agrees within tol."""

    def __init__(self, window: int = 3, rel_tol: float = 1e-9):
        if window < 2:
            raise ConfigError(f"steady-state window must be >= 2, got {window}")
        if rel_tol < 0:
            raise ConfigError(f"rel_tol must be >= 0, got {rel_tol}")
        self.window = window
        self.rel_tol = rel_tol
        self._samples: list[float] = []
        self._context: object | None = None

    def observe(self, sample: float) -> None:
        self._samples.append(sample)

    def rearm(self) -> None:
        """Forget every sample after a world perturbation.

        A mid-run fault (rank failure, blacklist, regrow, straggler
        slowdown) changes the steady-state step time, and the first steps
        after recovery carry a transient (cache warm-up, re-formed rings).
        Without re-arming, a window straddling the perturbation could keep
        reporting the *old* converged value and poison extrapolation; after
        ``rearm`` the detector must see a fresh window of post-recovery
        samples before it converges again.
        """
        self._samples.clear()

    def rearm_if_changed(self, key: object) -> bool:
        """Re-arm when the measurement context changes mid-sweep.

        A detector that outlives one measured point (the hybrid executor
        reuses its detector across a sweep's points) must forget its
        converged window the moment the context — world size, pipeline
        depth, microbatch count — changes: a window converged at one
        pipeline depth would otherwise extrapolate a *different* layout's
        step time.  ``key`` is any equality-comparable description of the
        context; returns True iff the change forced a re-arm.
        """
        if self._context is not None and self._context == key:
            return False
        changed = self._context is not None
        self._context = key
        if changed:
            self.rearm()
        return changed

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def converged(self) -> bool:
        """True once the last ``window`` samples agree within ``rel_tol``."""
        if len(self._samples) < self.window:
            return False
        tail = self._samples[-self.window:]
        lo, hi = min(tail), max(tail)
        if hi == lo:
            return True
        mean = sum(tail) / len(tail)
        if mean == 0.0:
            return False
        return (hi - lo) / mean <= self.rel_tol

    def steady_value(self) -> float:
        """The extrapolation value: mean of the converged window.

        When every sample in the window is bit-identical this returns
        that exact value rather than re-deriving it through a division.
        """
        if not self._samples:
            raise ConfigError("no samples observed")
        tail = self._samples[-self.window:]
        if all(s == tail[0] for s in tail):
            return tail[0]
        return sum(tail) / len(tail)


class PeriodicSteadyState:
    """Steady-state detection for an H-periodic step-time signal.

    Local-SGD runs sync every H steps, so the per-step time is not constant
    — it cycles through H phases (H-1 cheap local steps, one step carrying
    the parameter-sync collective).  A plain window detector would see the
    spread between phases and never converge.  This wrapper folds each full
    period into its sum, feeds the sums to an inner
    :class:`SteadyStateDetector`, and remembers the last observed value per
    phase so extrapolation can replay the H-step cadence exactly.

    The leading partial period (samples arriving before the first phase-0
    step) is ignored; convergence is only declared on period boundaries so
    an extrapolation always starts phase-aligned.
    """

    def __init__(self, period: int, window: int = 3, rel_tol: float = 1e-9):
        if period < 1:
            raise ConfigError(f"period must be >= 1, got {period}")
        self.period = period
        self._inner = SteadyStateDetector(window, rel_tol)
        self._accum: list[float] = []
        self._started = False
        self._last: dict[int, float] = {}

    def observe(self, sample: float, phase: int) -> None:
        self._last[phase % self.period] = sample
        if not self._started:
            if phase % self.period != 0:
                return
            self._started = True
        self._accum.append(sample)
        if len(self._accum) == self.period:
            self._inner.observe(sum(self._accum))
            self._accum.clear()

    def rearm(self) -> None:
        """Forget everything after a world perturbation (see
        :meth:`SteadyStateDetector.rearm`); detection restarts at the next
        phase-0 step."""
        self._inner.rearm()
        self._accum.clear()
        self._started = False
        self._last.clear()

    def converged(self) -> bool:
        """True only on a period boundary with the period sums converged."""
        return self._started and not self._accum and self._inner.converged()

    def phase_value(self, phase: int) -> float:
        """The converged value for one phase (stepwise extrapolation)."""
        if not self.converged():
            raise ConfigError("cannot extrapolate before convergence")
        return self._last[phase % self.period]

    def extrapolate(self, next_phase: int, count: int) -> list[float]:
        """Per-step values for ``count`` extrapolated steps starting at
        phase ``next_phase``, cycling the last observed value per phase."""
        if not self.converged():
            raise ConfigError("cannot extrapolate before convergence")
        return [
            self._last[(next_phase + j) % self.period] for j in range(count)
        ]
