"""Runtime toggles for the simulator's performance fast paths.

Both fast paths are *result-preserving* (the equivalence suite in
``tests/test_perf_equivalence.py`` holds them to that), so they default to
on.  They can be disabled per process via environment variables — the knob
the tests and the ablation harness use to compare against the slow path:

* ``REPRO_PERF_LINK_FASTPATH=0`` — disable the uncontended-link collapse
  in the event-driven engine (every transfer goes back to per-hop
  request/hold/release event scheduling);
* ``REPRO_PERF_SCHEDULE_MEMO=0`` — disable collective step-schedule
  memoization (ring/RSAG/hierarchical plans rebuilt per call).

Module globals are mutable on purpose: tests flip them directly
(``repro.perf.flags.link_fastpath = False``) instead of respawning.
"""

from __future__ import annotations

import os


def _env_on(name: str, default: bool = True) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "off", "false", "no")


#: collapse uncontended multi-hop transfers into one timed event
link_fastpath: bool = _env_on("REPRO_PERF_LINK_FASTPATH")

#: reuse collective step schedules across calls with identical keys
schedule_memo: bool = _env_on("REPRO_PERF_SCHEDULE_MEMO")


def reset_from_env() -> None:
    """Re-read both toggles from the environment (test helper)."""
    global link_fastpath, schedule_memo
    link_fastpath = _env_on("REPRO_PERF_LINK_FASTPATH")
    schedule_memo = _env_on("REPRO_PERF_SCHEDULE_MEMO")
