"""InfiniBand transfer protocol costs (eager vs. rendezvous zero-copy).

Two wire protocols, mirroring MVAPICH2:

* **eager** — small messages are copied into a pre-registered bounce buffer
  and sent immediately: no registration cost, but an extra copy on each
  side and a copy-bandwidth ceiling.
* **rendezvous (RPUT)** — large messages negotiate (RTS/CTS control
  round-trip), register source and destination buffers (cacheable), then
  RDMA-write directly from user memory: zero-copy at full link bandwidth.

The crossover is the MPI-level eager threshold (``MV2_IBA_EAGER_THRESHOLD``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.regcache import RegistrationCache


@dataclass(frozen=True)
class IbProtocolCosts:
    """Fixed protocol constants independent of the physical route."""

    eager_copy_bandwidth: float = 9.0e9  # packing into bounce buffers, B/s
    eager_overhead_s: float = 1.0e-6
    rndv_handshake_s: float = 3.5e-6  # RTS/CTS control round-trip


class IbTransferModel:
    """Computes protocol-side costs; the wire time itself comes from links.

    The model is *per HCA* (one per node in our clusters) and owns the
    registration cache for buffers pinned through that HCA.
    """

    def __init__(
        self,
        reg_cache: RegistrationCache,
        costs: IbProtocolCosts | None = None,
    ):
        self.reg_cache = reg_cache
        self.costs = costs or IbProtocolCosts()
        self.eager_sends = 0
        self.rndv_sends = 0

    def eager_overhead(self, nbytes: int) -> float:
        """Sender-side protocol cost of an eager message (excl. wire time)."""
        self.eager_sends += 1
        return self.costs.eager_overhead_s + nbytes / self.costs.eager_copy_bandwidth

    def rendezvous_overhead(
        self, buffer_id: int, chunk_bytes: int, extent: int | None = None
    ) -> float:
        """Sender-side protocol cost of a rendezvous message (excl. wire).

        With the registration cache enabled, the *whole buffer* (``extent``)
        is registered once and reused across chunks and calls.  Without it,
        MVAPICH2's pipelined rendezvous registers and deregisters **each
        pipeline chunk** — the repeated cost the cache exists to remove
        (paper §III-D / reference [22]).
        """
        self.rndv_sends += 1
        extent = extent if extent is not None else chunk_bytes
        if self.reg_cache.enabled:
            reg = self.reg_cache.acquire(buffer_id, extent)
        else:
            self.reg_cache.misses += 1
            reg = self.reg_cache.cost.register_time(
                chunk_bytes
            ) + self.reg_cache.cost.deregister_time(chunk_bytes)
        return self.costs.rndv_handshake_s + reg

    def stats(self) -> dict[str, float]:
        out = {"eager_sends": self.eager_sends, "rndv_sends": self.rndv_sends}
        out.update({f"regcache_{k}": v for k, v in self.reg_cache.stats().items()})
        return out
