"""InfiniBand memory-registration cost model and registration cache.

Registering memory with the HCA (``ibv_reg_mr``) pins pages and installs
IOMMU/MTT entries; its cost is linear in the number of pages plus a fixed
syscall overhead.  MVAPICH2's registration cache memoizes registrations
keyed by (buffer, length) so repeated sends from the same buffer skip the
cost.  [Liu, Wu, Panda, IJPP 2004] — the paper's reference [22].
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class RegistrationCostModel:
    """Linear-in-pages cost of (de)registering a buffer."""

    page_bytes: int = 65536  # V100 GDR registrations operate on 64 KiB chunks
    # GPU-memory (GDR) registration maps BAR apertures, costing noticeably
    # more per page than host-memory ibv_reg_mr
    register_base_s: float = 35e-6
    register_per_page_s: float = 4.0e-6
    deregister_base_s: float = 20e-6
    deregister_per_page_s: float = 1.4e-6

    def __post_init__(self) -> None:
        check_positive("page_bytes", self.page_bytes)

    def pages(self, nbytes: int) -> int:
        return max(1, -(-int(nbytes) // self.page_bytes))

    def register_time(self, nbytes: int) -> float:
        return self.register_base_s + self.pages(nbytes) * self.register_per_page_s

    def deregister_time(self, nbytes: int) -> float:
        return self.deregister_base_s + self.pages(nbytes) * self.deregister_per_page_s


class RegistrationCache:
    """LRU registration cache with hit/miss statistics.

    ``enabled=False`` models the legacy MVAPICH2-GDR behaviour the paper
    describes (cache disabled because TensorFlow's custom allocator breaks
    it): every zero-copy transfer pays register + deregister.

    Bookkeeping is O(1) per operation: entries live in an ``OrderedDict``
    mapping ``buffer_id`` to its registered extent (a plain ``int``, no
    per-entry wrapper object), with ``move_to_end``/``popitem`` providing
    constant-time LRU maintenance.  ``benchmarks/bench_regcache_lru.py``
    pins the flat per-op cost at high entry counts.
    """

    def __init__(
        self,
        cost_model: RegistrationCostModel | None = None,
        *,
        enabled: bool = True,
        max_entries: int = 1024,
    ):
        if max_entries < 1:
            raise ConfigError(f"max_entries must be >= 1, got {max_entries}")
        self.cost = cost_model or RegistrationCostModel()
        self.enabled = enabled
        self.max_entries = max_entries
        #: buffer_id -> registered extent in bytes (LRU order)
        self._entries: OrderedDict[int, int] = OrderedDict()
        self._txn: set[int] = set()
        self._poisoned: set[int] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        # Optional repro.sim.fastpath MutationClock: bumped on every
        # structural change (insert/evict/re-register/poison/flush) so the
        # replay memo can tell a pure hit from a state transition.  Pure
        # hits and disabled-mode acquires leave it untouched.
        self.clock = None

    def _bump_clock(self) -> None:
        if self.clock is not None:
            self.clock.bump()

    def begin_transaction(self) -> None:
        """Start a new MPI call scope.

        Even with the cache disabled, MVAPICH2 keeps a buffer's registration
        alive for the duration of one MPI call (all chunks of one rendezvous
        message reuse it); it is dropped when the call returns.  The
        transaction set models that call-scoped reuse.
        """
        self._txn.clear()

    def acquire(self, buffer_id: int, nbytes: int) -> float:
        """Cost of making ``buffer_id`` registered and ready for zero-copy.

        Returns the time charged to the critical path.
        """
        if not self.enabled:
            if buffer_id in self._txn:
                return 0.0
            self._txn.add(buffer_id)
            self.misses += 1
            # register now, deregister when the call completes: both on the path
            return self.cost.register_time(nbytes) + self.cost.deregister_time(nbytes)
        # statistics are per (call, buffer) — chunk re-uses within one call
        # are not separate cache lookups
        entries = self._entries
        count_stats = buffer_id not in self._txn
        self._txn.add(buffer_id)
        reg_bytes = entries.get(buffer_id)
        if self._poisoned and buffer_id in self._poisoned:
            # stale registration (HCA reset / fault-induced remap): the MTT
            # entries may point at reclaimed pages, so the cached entry must
            # NOT be reused — tear it down and re-register from scratch
            self._poisoned.discard(buffer_id)
            if reg_bytes is not None:
                self._bump_clock()
                del entries[buffer_id]
                entries[buffer_id] = nbytes
                if count_stats:
                    self.misses += 1
                return (
                    self.cost.deregister_time(reg_bytes)
                    + self.cost.register_time(nbytes)
                )
        # hit fast path (the ~93% case at steady state): already registered
        # at sufficient extent — one dict probe plus an O(1) move_to_end
        elif reg_bytes is not None and reg_bytes >= nbytes:
            entries.move_to_end(buffer_id)
            if count_stats:
                self.hits += 1
            return 0.0
        if count_stats:
            self.misses += 1
        self._bump_clock()
        time = self.cost.register_time(nbytes)
        if reg_bytes is not None:
            # re-registration at larger extent: drop the old pinning
            time += self.cost.deregister_time(reg_bytes)
            del entries[buffer_id]
        entries[buffer_id] = nbytes
        while len(entries) > self.max_entries:
            _, evicted_bytes = entries.popitem(last=False)
            self.evictions += 1
            time += self.cost.deregister_time(evicted_bytes)
        return time

    def invalidate(self, buffer_id: int) -> float:
        """Buffer freed: deregistration cost if it was cached."""
        self._poisoned.discard(buffer_id)
        reg_bytes = self._entries.pop(buffer_id, None)
        if reg_bytes is None:
            return 0.0
        self._bump_clock()
        self.invalidations += 1
        return self.cost.deregister_time(reg_bytes)

    def poison(self, buffer_id: int) -> None:
        """Mark a cached registration stale without removing it.

        Models fault-induced invalidation (HCA reset, page remap after a
        link flap): the entry stays resident but the next ``acquire`` must
        deregister and re-register instead of hitting.
        """
        if buffer_id in self._entries:
            self._bump_clock()
            self._poisoned.add(buffer_id)
            self.invalidations += 1

    def invalidate_all(self) -> float:
        """Flush every registration (fault recovery); returns total
        deregistration cost charged."""
        self._bump_clock()
        time = sum(
            self.cost.deregister_time(nbytes) for nbytes in self._entries.values()
        )
        self.invalidations += len(self._entries)
        self._entries.clear()
        self._poisoned.clear()
        return time

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def stats(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
            "entries": len(self._entries),
        }

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = 0
