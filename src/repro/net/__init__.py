"""Interconnect services: InfiniBand memory registration and RDMA costs.

The paper's second optimization (§III-D) is enabling MVAPICH2-GDR's
*registration cache* for PyTorch: zero-copy IB transfers require pinning
(registering) the communication buffer with the HCA, which costs
milliseconds for the multi-MB fused gradient buffers; caching the
registration across reuses of the same buffer removes that cost from the
critical path.  The ~93% hit rate the paper reports emerges here from
Horovod's reuse of its fusion buffer.
"""

from repro.net.regcache import RegistrationCache, RegistrationCostModel
from repro.net.infiniband import IbTransferModel

__all__ = ["RegistrationCache", "RegistrationCostModel", "IbTransferModel"]
