"""MPI datatypes and reduction operators."""

from __future__ import annotations

import enum
from typing import Callable

import numpy as np

from repro.errors import MpiError


class Datatype(enum.Enum):
    """Subset of MPI predefined datatypes used by DL workloads."""

    FLOAT32 = ("float32", 4)
    FLOAT64 = ("float64", 8)
    FLOAT16 = ("float16", 2)
    INT32 = ("int32", 4)
    INT64 = ("int64", 8)
    UINT8 = ("uint8", 1)

    def __init__(self, np_name: str, size: int):
        self.np_name = np_name
        self.size = size

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype(self.np_name)

    @classmethod
    def from_numpy(cls, dtype: np.dtype) -> "Datatype":
        name = np.dtype(dtype).name
        for member in cls:
            if member.np_name == name:
                return member
        raise MpiError(f"unsupported numpy dtype {dtype!r}")


class ReduceOp(enum.Enum):
    """MPI reduction operators with their numpy implementations."""

    SUM = "sum"
    PROD = "prod"
    MAX = "max"
    MIN = "min"

    @property
    def ufunc(self) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
        return {
            ReduceOp.SUM: np.add,
            ReduceOp.PROD: np.multiply,
            ReduceOp.MAX: np.maximum,
            ReduceOp.MIN: np.minimum,
        }[self]

    def reduce(self, arrays: list[np.ndarray]) -> np.ndarray:
        if not arrays:
            raise MpiError("reduce of empty buffer list")
        out = arrays[0].copy()
        for arr in arrays[1:]:
            self.ufunc(out, arr, out=out)
        return out
