"""Point-to-point MPI semantics over the event engine.

The collective engines (:mod:`repro.mpi.collectives`) time BSP step
schedules directly; this module provides the *message-passing* layer
underneath for protocol-level studies and tests: tagged send/recv with MPI
matching semantics, the eager/rendezvous protocol split, and non-blocking
requests.

Semantics implemented:

* **matching** — a receive matches the oldest pending send with the same
  (source, tag); ``ANY_SOURCE``/``ANY_TAG`` wildcards supported;
* **eager** — sends at or below the eager threshold complete locally as
  soon as the data is buffered (copied out); the payload travels
  immediately and waits in the receiver's unexpected-message queue;
* **rendezvous** — larger sends post an RTS and block until the matching
  receive posts its CTS; only then does the wire transfer run (zero-copy,
  no unexpected-queue buffering);
* **truncation** — receiving into a smaller buffer raises
  :class:`~repro.errors.MpiTruncateError`, as MPI_ERR_TRUNCATE would;
* **deadlock** — two blocking rendezvous sends toward each other never
  progress; the simulation engine's drain detection turns that into
  :class:`~repro.errors.DeadlockError` rather than a hang.

Functional payloads (numpy arrays) are delivered by reference-copy at
matching time, so correctness tests exercise real data movement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import MpiError, MpiRankError, MpiTruncateError
from repro.mpi.transports import TransportModel
from repro.sim.engine import Environment, Event

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class _PendingSend:
    seq: int
    src: int
    tag: int
    nbytes: int
    data: Optional[np.ndarray]
    wire_done: Event  # fires when payload has traversed the transport
    rendezvous_started: Event | None  # CTS gate for rendezvous sends


@dataclass
class _PendingRecv:
    seq: int
    src: int  # may be ANY_SOURCE
    tag: int  # may be ANY_TAG
    nbytes: int
    out: Optional[np.ndarray]
    done: Event  # fires with a RecvStatus


@dataclass(frozen=True)
class RecvStatus:
    """What MPI_Status would carry."""

    source: int
    tag: int
    nbytes: int


class P2PFabric:
    """Message-matching engine for one world."""

    def __init__(self, transport: TransportModel):
        self.transport = transport
        self.env: Environment = transport.cluster.env
        self._seq = itertools.count()
        # per destination rank: unmatched sends / unmatched recvs
        self._sends: dict[int, list[_PendingSend]] = {}
        self._recvs: dict[int, list[_PendingRecv]] = {}
        self.messages_delivered = 0

    def _check_rank(self, rank: int) -> None:
        if rank not in self.transport.ranks:
            raise MpiRankError(f"rank {rank} not in world")

    # -- matching core -----------------------------------------------------
    @staticmethod
    def _matches(send: _PendingSend, recv: _PendingRecv) -> bool:
        src_ok = recv.src == ANY_SOURCE or recv.src == send.src
        tag_ok = recv.tag == ANY_TAG or recv.tag == send.tag
        return src_ok and tag_ok

    def _try_match(self, dst: int) -> None:
        recvs = self._recvs.get(dst, [])
        sends = self._sends.get(dst, [])
        matched = True
        while matched:
            matched = False
            for ri, recv in enumerate(recvs):
                for si, send in enumerate(sends):
                    if self._matches(send, recv):
                        recvs.pop(ri)
                        sends.pop(si)
                        self._complete(send, recv, dst)
                        matched = True
                        break
                if matched:
                    break

    def _complete(self, send: _PendingSend, recv: _PendingRecv, dst: int) -> None:
        if send.nbytes > recv.nbytes:
            exc = MpiTruncateError(
                f"message of {send.nbytes}B truncated into {recv.nbytes}B buffer "
                f"(src={send.src}, dst={dst}, tag={send.tag})"
            )
            recv.done.fail(exc)
            # sender side also observes the error in real MPI only sometimes;
            # we propagate so tests fail loudly
            if send.rendezvous_started is not None and not send.rendezvous_started.triggered:
                send.rendezvous_started.fail(exc)
            return
        if send.rendezvous_started is not None:
            # CTS: unblock the sender; the wire transfer starts now
            send.rendezvous_started.succeed()

        def deliver():
            try:
                yield send.wire_done
            except MpiError as exc:
                # transport gave up (injected loss, retry budget exhausted):
                # surface the typed error to the receiver instead of
                # stranding it
                recv.done.fail(exc)
                return
            if send.data is not None and recv.out is not None:
                flat = recv.out.reshape(-1)
                flat[: send.data.size] = send.data.reshape(-1)
            self.messages_delivered += 1
            recv.done.succeed(RecvStatus(send.src, send.tag, send.nbytes))

        self.env.process(deliver(), name=f"deliver:{send.src}->{dst}:{send.tag}")

    # -- public operations ------------------------------------------------------
    def isend(
        self,
        src: int,
        dst: int,
        *,
        tag: int = 0,
        data: Optional[np.ndarray] = None,
        nbytes: Optional[int] = None,
    ) -> Event:
        """Non-blocking send; returned event fires when the send completes
        (locally for eager, after the wire for rendezvous)."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise MpiError("self-sends must be matched by a posted self-recv; "
                           "use distinct ranks in this simulation")
        if data is None and nbytes is None:
            raise MpiError("isend needs data or nbytes")
        size = int(nbytes if nbytes is not None else data.size * data.itemsize)
        payload = None if data is None else np.array(data, copy=True)
        eager = size <= self.transport.config.eager_threshold
        wire_done = self.env.event(name=f"wire:{src}->{dst}")
        completion = self.env.event(name=f"send-done:{src}->{dst}")
        rendezvous_started = None if eager else self.env.event(
            name=f"cts:{src}->{dst}"
        )

        def wire():
            if rendezvous_started is not None:
                yield rendezvous_started
            try:
                yield self.env.process(
                    self.transport.transfer_proc(src, dst, size)
                )
            except MpiError as exc:
                wire_done.fail(exc)
                return
            wire_done.succeed()

        self.env.process(wire(), name=f"send:{src}->{dst}:{tag}")

        send = _PendingSend(
            seq=next(self._seq),
            src=src,
            tag=tag,
            nbytes=size,
            data=payload,
            wire_done=wire_done,
            rendezvous_started=rendezvous_started,
        )
        self._sends.setdefault(dst, []).append(send)

        def completer():
            if eager:
                # eager: send buffer reusable immediately after local copy
                yield self.env.timeout(0)
            else:
                try:
                    yield wire_done
                except MpiError as exc:
                    completion.fail(exc)
                    return
            completion.succeed()

        self.env.process(completer(), name=f"send-completion:{src}->{dst}")
        self._try_match(dst)
        return completion

    def irecv(
        self,
        dst: int,
        *,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        out: Optional[np.ndarray] = None,
        nbytes: Optional[int] = None,
    ) -> Event:
        """Non-blocking receive; event value is a :class:`RecvStatus`."""
        self._check_rank(dst)
        if source != ANY_SOURCE:
            self._check_rank(source)
        if out is None and nbytes is None:
            raise MpiError("irecv needs an output array or nbytes capacity")
        capacity = int(nbytes if nbytes is not None else out.size * out.itemsize)
        done = self.env.event(name=f"recv-done:{dst}")
        recv = _PendingRecv(
            seq=next(self._seq),
            src=source,
            tag=tag,
            nbytes=capacity,
            out=out,
            done=done,
        )
        self._recvs.setdefault(dst, []).append(recv)
        self._try_match(dst)
        return done

    # -- blocking conveniences (for use inside simulation processes) -----------
    def send(self, src: int, dst: int, **kwargs):
        """Process helper: ``yield from fabric.send(...)``."""
        completion = self.isend(src, dst, **kwargs)
        yield completion

    def recv(self, dst: int, **kwargs):
        """Process helper: ``status = yield from fabric.recv(...)``."""
        done = self.irecv(dst, **kwargs)
        status = yield done
        return status

    def sendrecv(self, rank: int, dst: int, src: int, *, send_kwargs=None,
                 recv_kwargs=None):
        """Simultaneous send+recv (deadlock-free exchange primitive)."""
        send_done = self.isend(rank, dst, **(send_kwargs or {}))
        recv_done = self.irecv(rank, source=src, **(recv_kwargs or {}))
        yield self.env.all_of([send_done, recv_done])
        return recv_done.value

    def pending_counts(self) -> tuple[int, int]:
        """(unmatched sends, unmatched recvs) — for drain assertions."""
        sends = sum(len(v) for v in self._sends.values())
        recvs = sum(len(v) for v in self._recvs.values())
        return sends, recvs
