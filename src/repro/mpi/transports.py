"""CUDA-aware transport selection and cost model.

This module decides *how* bytes move between two ranks and what that costs —
the layer the paper's MPI-Opt design changes.  Four GPU-to-GPU transports:

``CUDA_IPC``
    Direct device-to-device copy over NVLink/X-Bus after mapping the peer
    buffer with CUDA IPC.  Requires (a) ``MV2_CUDA_IPC`` on, (b) *mutual*
    MPI-layer visibility of the two devices, (c) message size above the IPC
    rendezvous threshold.  This is the fast path the paper restores.

``HOST_STAGED``
    The fallback when IPC is unavailable: sender ``cudaMemcpy``s chunks
    D2H into the pageable shared-memory region, receiver copies H2D.
    Pageable-copy bandwidth plus per-chunk synchronization makes this the
    dominant cost of the paper's "default" configuration.

``SMP_EAGER``
    Small intra-node messages always use the shared-memory eager path
    (double copy, cheap at small sizes) — IPC would not amortize.  This is
    why the paper's Table I shows ~0 improvement below 16 MB.

``GDR_RDMA``
    Inter-node zero-copy: rendezvous handshake + (cacheable) registration,
    then GPUDirect RDMA at wire speed.  ``IB_EAGER`` covers small messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cuda.runtime import IPC_OPEN_OVERHEAD_S
from repro.errors import MpiError, MpiTimeoutError
from repro.faults.plan import RetryPolicy
from repro.hardware.cluster import Cluster
from repro.hardware.node import DeviceRef
from repro.mpi.env import Mv2Config
from repro.mpi.process import RankContext
from repro.net.infiniband import IbTransferModel
from repro.net.regcache import RegistrationCache
from repro.perf import flags as perf_flags
from repro.sim.resources import Resource, try_acquire_all
from repro.utils.units import MIB


class TransportKind(enum.Enum):
    SELF = "self"
    CUDA_IPC = "cuda-ipc"
    HOST_STAGED = "host-staged"
    SMP_EAGER = "smp-eager"
    GDR_RDMA = "gdr-rdma"
    IB_EAGER = "ib-eager"
    STAGED_INTER = "staged-inter"  # inter-node with GDR disabled


#: intra-node messages at or below this always take the SMP eager path
SMP_EAGER_THRESHOLD = 64 * 1024

#: IPC rendezvous is only attempted above this size (handle-open and
#: synchronization costs do not amortize below it).  At 4 ranks, the ring
#: chunks of >=16 MB fused buffers sit at >=4 MiB and take the IPC path,
#: while chunks of smaller messages fall back to staging — which is why
#: Table I shows gains only in the >=16 MB bins.
CUDA_IPC_THRESHOLD = 4 * MIB


@dataclass
class CostBreakdown:
    """Per-transfer cost decomposition (seconds)."""

    kind: TransportKind
    wire: float = 0.0  # link traversal at bottleneck bandwidth
    staging: float = 0.0  # pageable-copy + chunk-sync cost
    protocol: float = 0.0  # handshakes, registration, IPC setup
    nbytes: int = 0

    @property
    def total(self) -> float:
        return self.wire + self.staging + self.protocol


@dataclass
class TransportStats:
    """Aggregate byte/transfer counters per transport kind."""

    bytes_moved: dict[TransportKind, int] = field(
        default_factory=lambda: {k: 0 for k in TransportKind}
    )
    transfers: dict[TransportKind, int] = field(
        default_factory=lambda: {k: 0 for k in TransportKind}
    )

    def record(self, kind: TransportKind, nbytes: int) -> None:
        self.bytes_moved[kind] += nbytes
        self.transfers[kind] += 1


class TransportModel:
    """Selects and costs transports for one MPI world."""

    def __init__(
        self,
        cluster: Cluster,
        config: Mv2Config,
        ranks: list[RankContext],
        *,
        faults=None,
        retry: RetryPolicy | None = None,
    ):
        self.cluster = cluster
        self.config = config
        self.faults = faults
        self.retry = retry or RetryPolicy()
        if faults is not None:
            cluster.apply_fault_injector(faults)
        self.ranks = {r.rank: r for r in ranks}
        env = cluster.env
        node_ids = sorted({r.node_id for r in ranks})
        self._ib: dict[int, IbTransferModel] = {
            nid: IbTransferModel(
                RegistrationCache(
                    enabled=config.registration_cache,
                    max_entries=config.reg_cache_entries,
                )
            )
            for nid in node_ids
        }
        self._staging: dict[int, Resource] = {
            nid: Resource(
                env,
                capacity=cluster.spec.node.staging_engines,
                name=f"n{nid}:staging",
            )
            for nid in node_ids
        }
        self._ipc_pairs: set[tuple[int, int]] = set()
        self.stats = TransportStats()
        # Optional repro.sim.fastpath MutationClock: bumped when a new IPC
        # pair opens (the one structural transition the IPC path has).
        self.mutation_clock = None
        # Seconds each rank spends driving pageable staging copies; these
        # copies are synchronous w.r.t. the GPU stream, so the scaling study
        # charges them against compute (the default path's hidden tax).
        self.staged_seconds: dict[int, float] = {r.rank: 0.0 for r in ranks}

    def begin_collective(self) -> None:
        """Open a new MPI-call scope on every HCA's registration state."""
        for ib in self._ib.values():
            ib.reg_cache.begin_transaction()

    # -- selection -----------------------------------------------------------
    def can_ipc(self, a: RankContext, b: RankContext) -> bool:
        """Mutual-visibility IPC test (the crux of the paper's §III-C)."""
        if a.node_id != b.node_id or a.rank == b.rank:
            return False
        if not self.config.cuda_ipc_enabled:
            return False
        return a.mpi_sees(b.physical_device) and b.mpi_sees(a.physical_device)

    def select(self, src: int, dst: int, nbytes: int) -> TransportKind:
        a, b = self.ranks[src], self.ranks[dst]
        if src == dst:
            return TransportKind.SELF
        if a.node_id == b.node_id:
            if nbytes <= SMP_EAGER_THRESHOLD:
                return TransportKind.SMP_EAGER
            if nbytes >= CUDA_IPC_THRESHOLD and self.can_ipc(a, b):
                return TransportKind.CUDA_IPC
            return TransportKind.HOST_STAGED
        if nbytes <= self.config.eager_threshold:
            return TransportKind.IB_EAGER
        if self.config.gdr_enabled:
            return TransportKind.GDR_RDMA
        return TransportKind.STAGED_INTER

    # -- helper geometry -------------------------------------------------------
    def _cpu_of(self, rank: RankContext) -> DeviceRef:
        node = self.cluster.nodes[rank.node_id]
        return node.cpu_refs[node.socket_of_gpu(rank.physical_device)]

    def _staged_time(self, a: RankContext, b: RankContext, nbytes: int) -> float:
        """Chunk-pipelined D2H + H2D staging through pageable host memory."""
        spec = self.cluster.spec.node
        chunks = max(1, -(-nbytes // self.config.smp_chunk_bytes))
        # Two pageable copies pipeline; steady-state throughput is bounded by
        # the slower stage (both are pageable-copy bound, not NVLink bound).
        per_byte = 1.0 / spec.pageable_copy_bandwidth
        pipeline_fill = min(nbytes, self.config.smp_chunk_bytes) * per_byte
        return (
            chunks * self.config.smp_chunk_overhead_s
            + nbytes * per_byte
            + pipeline_fill
        )

    # -- analytic costs -----------------------------------------------------------
    def cost(
        self,
        src: int,
        dst: int,
        nbytes: int,
        *,
        src_buffer: int | None = None,
        dst_buffer: int | None = None,
        buffer_extent: int | None = None,
        kind: TransportKind | None = None,
    ) -> CostBreakdown:
        """Uncontended cost of one message; mutates protocol state
        (registration caches, IPC pair setup) exactly as a real send would."""
        a, b = self.ranks[src], self.ranks[dst]
        extent = buffer_extent if buffer_extent is not None else nbytes
        kind = kind or self.select(src, dst, nbytes)
        out = CostBreakdown(kind=kind, nbytes=nbytes)
        if kind is TransportKind.SELF:
            return out
        if kind is TransportKind.SMP_EAGER:
            spec = self.cluster.spec.node
            out.protocol = 2.0e-6  # shared-memory queue post/poll
            out.staging = 2 * nbytes / spec.pageable_copy_bandwidth
            self._charge_staging(src, dst, out.staging)
        elif kind is TransportKind.CUDA_IPC:
            pair = (min(src, dst), max(src, dst))
            if pair not in self._ipc_pairs:
                if self.mutation_clock is not None:
                    self.mutation_clock.bump()
                self._ipc_pairs.add(pair)
                out.protocol += IPC_OPEN_OVERHEAD_S
            out.protocol += 3.0e-6  # IPC rendezvous synchronization
            path = self.cluster.path_cost(a.device_ref, b.device_ref, nbytes)
            pipeline = nbytes / self.config.cuda_ipc_bandwidth
            out.wire = max(path, pipeline)
        elif kind is TransportKind.HOST_STAGED:
            out.protocol = 2.5e-6
            out.staging = self._staged_time(a, b, nbytes)
            self._charge_staging(src, dst, out.staging)
        elif kind is TransportKind.IB_EAGER:
            ib = self._ib[a.node_id]
            out.protocol = ib.eager_overhead(nbytes)
            # small D2H copy into the bounce buffer, then the wire
            out.staging = nbytes / self.cluster.spec.node.pageable_copy_bandwidth
            out.wire = self.cluster.path_cost(a.device_ref, b.device_ref, nbytes)
        elif kind is TransportKind.GDR_RDMA:
            ib_src = self._ib[a.node_id]
            ib_dst = self._ib[b.node_id]
            out.protocol = ib_src.rendezvous_overhead(
                src_buffer if src_buffer is not None else -src - 1, nbytes, extent
            )
            # receiver's buffer is advertised once per call (CTS carries the
            # rkey); charge it through the call-scoped transaction
            out.protocol += ib_dst.reg_cache.acquire(
                dst_buffer if dst_buffer is not None else -dst - 1, extent
            )
            out.wire = self.cluster.path_cost(a.device_ref, b.device_ref, nbytes)
        elif kind is TransportKind.STAGED_INTER:
            ib_src = self._ib[a.node_id]
            out.protocol = ib_src.rendezvous_overhead(
                src_buffer if src_buffer is not None else -src - 1, nbytes, extent
            )
            out.staging = 2 * nbytes / self.cluster.spec.node.pageable_copy_bandwidth
            self._charge_staging(src, dst, out.staging)
            out.wire = self.cluster.path_cost(
                self._cpu_of(a), self._cpu_of(b), nbytes
            )
        else:  # pragma: no cover - enum is exhaustive
            raise MpiError(f"unhandled transport {kind}")
        self.stats.record(kind, nbytes)
        return out

    def _charge_staging(self, src: int, dst: int, staging: float) -> None:
        """Attribute a staged transfer's copy time to its two endpoints
        (sender drives the D2H half, receiver the H2D half)."""
        self.staged_seconds[src] += staging / 2
        self.staged_seconds[dst] += staging / 2

    def max_staged_seconds(self) -> float:
        """Busiest rank's cumulative staging time (the compute-blocking tax)."""
        return max(self.staged_seconds.values(), default=0.0)

    # -- event-driven transfer -----------------------------------------------------
    def transfer_proc(
        self,
        src: int,
        dst: int,
        nbytes: int,
        *,
        src_buffer: int | None = None,
        dst_buffer: int | None = None,
        buffer_extent: int | None = None,
    ):
        """Simulation process realizing the same cost with link contention.

        With a fault injector attached, every transmission attempt is
        subject to injected delay and loss.  A lost message costs the ack
        timeout to detect, then retransmits after exponential backoff;
        exhausting the retry budget raises
        :class:`~repro.errors.MpiTimeoutError` (surfaced, not a hang).
        """
        env_ = self.cluster.env
        if self.faults is not None:
            attempt = 0
            severed = False
            while True:
                verdict = self.faults.message_verdict(src, dst, env_.now)
                severed = verdict.severed
                if verdict.delay_s > 0:
                    yield env_.timeout(verdict.delay_s)
                if not verdict.drop:
                    if not self.faults.corruption_verdict(src, dst, env_.now):
                        break
                    # delivered but damaged: the CRC32 frame check catches
                    # it and the ladder retransmits, exactly like a loss —
                    # corruption can never reach the consumer undetected
                    from repro.comm.integrity import crc_check_time

                    yield env_.timeout(crc_check_time(nbytes))
                    self.faults.record(
                        "crc-detected", env_.now, src=src, dst=dst,
                        detail=f"{nbytes}B retransmit",
                    )
                attempt += 1
                if attempt > self.retry.max_retries:
                    cause = (
                        "path severed (partition/switch outage)"
                        if severed else "lost"
                    )
                    self.faults.record(
                        "msg-timeout", env_.now, src=src, dst=dst,
                        detail=f"{nbytes}B after {attempt} attempts"
                               + (" severed" if severed else ""),
                    )
                    raise MpiTimeoutError(
                        f"message {src}->{dst} ({nbytes}B) {cause} "
                        f"{attempt} time(s); retry budget "
                        f"({self.retry.max_retries}) exhausted"
                    )
                backoff = self.retry.backoff(attempt)
                self.faults.record(
                    "msg-retry", env_.now, src=src, dst=dst,
                    detail=f"attempt={attempt} backoff={backoff:g}s",
                )
                yield env_.timeout(self.retry.ack_timeout_s + backoff)
        a, b = self.ranks[src], self.ranks[dst]
        kind = self.select(src, dst, nbytes)
        breakdown = self.cost(
            src, dst, nbytes, src_buffer=src_buffer, dst_buffer=dst_buffer,
            buffer_extent=buffer_extent, kind=kind,
        )
        env = self.cluster.env
        if breakdown.protocol:
            yield env.timeout(breakdown.protocol)
        if kind in (TransportKind.HOST_STAGED, TransportKind.SMP_EAGER):
            staging = self._staging[a.node_id]
            yield staging.request()
            try:
                yield env.timeout(breakdown.staging)
            finally:
                staging.release()
            return kind
        if kind is TransportKind.STAGED_INTER:
            staging = self._staging[a.node_id]
            yield staging.request()
            try:
                yield env.timeout(breakdown.staging)
            finally:
                staging.release()
            yield env.process(
                self.cluster.transfer(self._cpu_of(a), self._cpu_of(b), nbytes)
            )
            return kind
        if breakdown.staging:
            yield env.timeout(breakdown.staging)
        if kind in (TransportKind.CUDA_IPC, TransportKind.GDR_RDMA, TransportKind.IB_EAGER):
            # claim every hop of the route for the (possibly protocol-capped)
            # wire duration so contention is simulated
            hops = self.cluster.route(a.device_ref, b.device_ref)
            channels = [link.channel(frm, to) for link, frm, to in hops]
            if perf_flags.link_fastpath and try_acquire_all(channels):
                # Uncontended-link fast path: no other flow shares any hop
                # right now, so the per-hop request/grant events collapse
                # into one timed event.  The channels stay held for the
                # wire duration, so any flow arriving meanwhile queues
                # exactly as it would on the slow path below.
                try:
                    yield env.timeout(breakdown.wire)
                    for link, _, _ in hops:
                        link.bytes_carried += nbytes
                        link.transfer_count += 1
                finally:
                    for channel in reversed(channels):
                        channel.release()
                return kind
            held = []
            try:
                for channel in channels:
                    yield channel.request()
                    held.append(channel)
                yield env.timeout(breakdown.wire)
                for link, _, _ in hops:
                    link.bytes_carried += nbytes
                    link.transfer_count += 1
            finally:
                for channel in reversed(held):
                    channel.release()
        return kind

    def drop_registrations(self, node_id: int | None = None) -> float:
        """Flush registration caches (fault recovery after an HCA reset or
        link flap); returns the total deregistration time charged."""
        time = 0.0
        for nid, ib in self._ib.items():
            if node_id is None or nid == node_id:
                time += ib.reg_cache.invalidate_all()
        if self.faults is not None:
            self.faults.record(
                "regcache-flush", self.cluster.env.now,
                detail="all nodes" if node_id is None else f"node {node_id}",
            )
        return time

    # -- reporting -------------------------------------------------------------------
    def regcache_stats(self) -> dict[str, float]:
        """Aggregated registration-cache statistics across all HCAs."""
        hits = sum(ib.reg_cache.hits for ib in self._ib.values())
        misses = sum(ib.reg_cache.misses for ib in self._ib.values())
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else 0.0,
        }
