"""Rank/process model and world construction.

One MPI rank drives one GPU (the paper's launch configuration: 4 ranks per
Lassen node).  Each rank has

* an *application* CUDA context restricted by whatever
  ``CUDA_VISIBLE_DEVICES`` policy is in force, and
* an *MPI-layer* device mask — normally inherited from the application, but
  overridable with the paper's proposed ``MV2_VISIBLE_DEVICES`` when the
  runtime supports cross-visibility IPC (CUDA >= 10.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.cuda.env import VisibilityMask
from repro.cuda.runtime import CudaContext, CudaRuntime, CudaVersion, DEFAULT_CUDA_VERSION
from repro.errors import ConfigError
from repro.hardware.cluster import Cluster
from repro.hardware.node import DeviceRef
from repro.mpi.env import Mv2Config


class DevicePolicy(Protocol):
    """Maps a local rank to its application-level visibility mask."""

    def app_mask(self, local_rank: int, gpus_per_node: int) -> VisibilityMask:
        """Return the CUDA_VISIBLE_DEVICES mask for this local rank."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class SingletonDevicePolicy:
    """``CUDA_VISIBLE_DEVICES=local_rank`` — the recommended (but
    IPC-breaking) discipline from the paper's §III-C."""

    def app_mask(self, local_rank: int, gpus_per_node: int) -> VisibilityMask:
        return VisibilityMask.single(local_rank)


@dataclass(frozen=True)
class AllDevicesPolicy:
    """No restriction: every process sees every GPU (Fig. 6a behaviour)."""

    def app_mask(self, local_rank: int, gpus_per_node: int) -> VisibilityMask:
        return VisibilityMask.all_devices(gpus_per_node)


@dataclass
class RankContext:
    """Everything the communication layers need to know about one rank."""

    rank: int
    node_id: int
    local_rank: int
    device_ref: DeviceRef
    app_ctx: CudaContext
    mpi_mask: VisibilityMask
    runtime: CudaRuntime

    @property
    def physical_device(self) -> int:
        return self.device_ref.index

    def mpi_sees(self, physical: int) -> bool:
        return self.mpi_mask.sees(physical)

    def __repr__(self) -> str:
        return (
            f"<Rank {self.rank} node={self.node_id} gpu={self.physical_device} "
            f"app_mask={self.app_ctx.mask} mpi_mask={self.mpi_mask}>"
        )


@dataclass(frozen=True)
class WorldSpec:
    """Inputs needed to instantiate a set of ranks on a cluster."""

    num_ranks: int
    policy: DevicePolicy
    config: Mv2Config
    cuda_version: CudaVersion = DEFAULT_CUDA_VERSION
    # Model the frameworks' aggressive context creation (Fig. 6a): every
    # process touches all of its visible devices at startup.
    touch_all_visible: bool = True


def _resolve_mpi_mask(
    app_mask: VisibilityMask,
    config: Mv2Config,
    cuda_version: CudaVersion,
    gpus_per_node: int,
) -> VisibilityMask:
    """Apply the MV2_VISIBLE_DEVICES override semantics.

    Before CUDA 10.1 the override is ineffective: even if MPI *sees* more
    devices, ``cuIpcOpenMemHandle`` fails for devices outside
    ``CUDA_VISIBLE_DEVICES``, so MVAPICH2 falls back to the application
    mask.  From 10.1 the override takes effect (the paper's §III-C).
    """
    if config.mv2_visible_devices is None:
        return app_mask
    if not cuda_version.supports_cross_visibility_ipc:
        return app_mask
    text = config.mv2_visible_devices
    if text == "all":
        return VisibilityMask.all_devices(gpus_per_node)
    return VisibilityMask.parse(text)


def build_world(cluster: Cluster, spec: WorldSpec) -> list[RankContext]:
    """Create one rank per GPU in MPI rank order (node-major)."""
    gpn = cluster.gpus_per_node
    if spec.num_ranks < 1:
        raise ConfigError(f"num_ranks must be >= 1, got {spec.num_ranks}")
    if spec.num_ranks > cluster.num_gpus:
        raise ConfigError(
            f"{spec.num_ranks} ranks > {cluster.num_gpus} GPUs in cluster"
        )
    runtimes: dict[int, CudaRuntime] = {}
    ranks: list[RankContext] = []
    for rank in range(spec.num_ranks):
        node_id, local_rank = divmod(rank, gpn)
        runtime = runtimes.get(node_id)
        if runtime is None:
            runtime = CudaRuntime(cluster, node_id, version=spec.cuda_version)
            runtimes[node_id] = runtime
        app_mask = spec.policy.app_mask(local_rank, gpn)
        if not app_mask.sees(local_rank):
            raise ConfigError(
                f"policy mask {app_mask} for local rank {local_rank} hides its own GPU"
            )
        ctx = runtime.create_context(pid=rank + 1, mask=app_mask)
        # select the logical ordinal that maps to this rank's physical GPU
        logical = app_mask.physical.index(local_rank)
        ctx.set_device(logical)
        if spec.touch_all_visible:
            ctx.touch_all_visible()
        else:
            ctx.ensure_context(local_rank)
        mpi_mask = _resolve_mpi_mask(app_mask, spec.config, spec.cuda_version, gpn)
        ranks.append(
            RankContext(
                rank=rank,
                node_id=node_id,
                local_rank=local_rank,
                device_ref=cluster.gpu_ref(rank),
                app_ctx=ctx,
                mpi_mask=mpi_mask,
                runtime=runtime,
            )
        )
    return ranks
