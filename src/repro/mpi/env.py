"""MVAPICH2-GDR tuning surface.

:class:`Mv2Config` mirrors the environment variables the paper manipulates.
The three named scenarios of §III-D are built from it in
:mod:`repro.core.scenarios`:

* **MPI**      — ``registration_cache=False``, no ``MV2_VISIBLE_DEVICES``
  (IPC lost under per-rank ``CUDA_VISIBLE_DEVICES``);
* **MPI-Reg**  — registration cache on, IPC still lost;
* **MPI-Opt**  — registration cache on *and* ``MV2_VISIBLE_DEVICES=all``
  restoring IPC for the MPI layer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional

from repro.errors import ConfigError
from repro.utils.units import KIB, parse_bytes
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Mv2Config:
    """Knobs of the simulated MVAPICH2-GDR build."""

    # Point-to-point protocol switch (MV2_IBA_EAGER_THRESHOLD).
    eager_threshold: int = 16 * KIB
    # GPU-GPU intra-node: may MPI attempt CUDA IPC at all (MV2_CUDA_IPC)?
    cuda_ipc_enabled: bool = True
    # The paper's proposed variable: MPI-layer device visibility, decoupled
    # from the application's CUDA_VISIBLE_DEVICES.  ``None`` -> MPI inherits
    # the application mask (default behaviour the paper fixes).
    mv2_visible_devices: Optional[str] = None
    # InfiniBand registration cache (MV2_USE_REGISTRATION_CACHE).
    registration_cache: bool = False
    # GPUDirect RDMA for inter-node transfers (MV2_USE_GPUDIRECT).
    gdr_enabled: bool = True
    # Shared-memory staging parameters for the non-IPC intra-node path
    # (MV2_CUDA_SMP_PIPELINE chunking).
    smp_chunk_bytes: int = 512 * KIB
    smp_chunk_overhead_s: float = 18e-6
    # Effective bandwidth of the CUDA-IPC large-message pipeline.  MVAPICH2
    # moves IPC data through a chunked intermediate mapping with per-chunk
    # handshakes, sustaining far less than raw NVLink; 5.9 GB/s back-solves
    # from Table I's optimized allreduce time (~39 ms/step at 4 GPUs).
    cuda_ipc_bandwidth: float = 5.9e9
    # Collective algorithm override: None -> size/topology heuristic.
    allreduce_algorithm: Optional[str] = None
    # Registration cache capacity (entries).
    reg_cache_entries: int = 1024

    def __post_init__(self) -> None:
        check_positive("eager_threshold", self.eager_threshold)
        check_positive("smp_chunk_bytes", self.smp_chunk_bytes)
        if self.smp_chunk_overhead_s < 0:
            raise ConfigError("smp_chunk_overhead_s must be >= 0")
        if self.allreduce_algorithm is not None and self.allreduce_algorithm not in (
            "ring",
            "recursive_doubling",
            "reduce_scatter_allgather",
            "hierarchical",
        ):
            raise ConfigError(
                f"unknown allreduce algorithm {self.allreduce_algorithm!r}"
            )

    # -- env-var interface -------------------------------------------------
    @classmethod
    def from_env(cls, env: Mapping[str, str]) -> "Mv2Config":
        """Build a config from MVAPICH2-style environment variables."""
        kwargs = {}
        if "MV2_IBA_EAGER_THRESHOLD" in env:
            kwargs["eager_threshold"] = parse_bytes(env["MV2_IBA_EAGER_THRESHOLD"])
        if "MV2_CUDA_IPC" in env:
            kwargs["cuda_ipc_enabled"] = env["MV2_CUDA_IPC"] not in ("0", "off")
        if "MV2_VISIBLE_DEVICES" in env:
            kwargs["mv2_visible_devices"] = env["MV2_VISIBLE_DEVICES"]
        if "MV2_USE_REGISTRATION_CACHE" in env:
            kwargs["registration_cache"] = env["MV2_USE_REGISTRATION_CACHE"] not in (
                "0",
                "off",
            )
        if "MV2_USE_GPUDIRECT" in env:
            kwargs["gdr_enabled"] = env["MV2_USE_GPUDIRECT"] not in ("0", "off")
        if "MV2_ALLREDUCE_ALGORITHM" in env:
            kwargs["allreduce_algorithm"] = env["MV2_ALLREDUCE_ALGORITHM"]
        return cls(**kwargs)

    def replace(self, **kwargs) -> "Mv2Config":
        return replace(self, **kwargs)

    def describe(self) -> str:
        parts = [
            f"eager<= {self.eager_threshold}B",
            f"ipc={'on' if self.cuda_ipc_enabled else 'off'}",
            f"mv2_visible={self.mv2_visible_devices or '(inherit)'}",
            f"regcache={'on' if self.registration_cache else 'off'}",
            f"gdr={'on' if self.gdr_enabled else 'off'}",
        ]
        return ", ".join(parts)
