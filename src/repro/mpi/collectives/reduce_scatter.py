"""MPI_Reduce_scatter_block: ring algorithm.

The reduce-scatter half of the ring allreduce run standalone: p-1 ring
steps, each moving one rank's ``nbytes_per_rank`` shard while combining it
into the local partial.  Tensor parallelism uses it to turn replicated
activation gradients back into per-rank shards (the dual of the forward
activation allgather).
"""

from __future__ import annotations

from repro.comm.cost import FLOAT32_BYTES
from repro.mpi.collectives.base import CollectiveTiming, RingSchedule, StepCoster


def reduce_scatter_timing(
    coster: StepCoster,
    ranks: list[int],
    nbytes_per_rank: int,
    *,
    buffer_ids: dict[int, int] | None = None,
    dtype_bytes: int = FLOAT32_BYTES,
) -> CollectiveTiming:
    """Each rank starts with the full vector, ends with its reduced shard."""
    p = len(ranks)
    if p <= 1:
        return CollectiveTiming(
            "reduce_scatter", "ring", nbytes_per_rank, p, 0.0, coster.mode
        )

    steps = RingSchedule.uniform(ranks, nbytes_per_rank, buffer_ids, dtype_bytes)
    total = coster.run_steps(steps)
    return CollectiveTiming(
        "reduce_scatter", "ring", nbytes_per_rank, p, total, coster.mode,
        {"ring": total},
    )
