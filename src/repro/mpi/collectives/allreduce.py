"""MPI_Allreduce algorithms.

Four algorithms, matching the MVAPICH2 algorithm family the paper's
workload exercises:

* ``ring`` — chunked ring (bandwidth-optimal: ``2n(p-1)/p`` bytes/rank);
* ``recursive_doubling`` — latency-optimal for small messages;
* ``reduce_scatter_allgather`` — Rabenseifner's algorithm;
* ``hierarchical`` — two-level: intra-node binomial reduce to a node
  leader, inter-node ring among leaders, intra-node binomial bcast.  This
  is the shape MVAPICH2-GDR and NCCL both use on NVLink-dense nodes, and
  the level at which the intra-node transport (IPC vs. host-staged) decides
  the paper's headline numbers.
"""

from __future__ import annotations

import math

from repro.comm.cost import (  # noqa: F401 - re-exported for legacy callers
    ScheduleMemo,
    allreduce_lower_bound,
    ring_step_count,
)
from repro.comm.cost import FLOAT32_BYTES
from repro.errors import MpiError
from repro.mpi.collectives.base import (
    CollectiveTiming,
    PairTransfer,
    RingSchedule,
    StepCoster,
    is_power_of_two,
)
from repro.utils.units import KIB

# Step-schedule memo, now owned by repro.comm.cost (the dedup home of the
# α-β/memoization code the backends used to copy).  ``_SCHEDULE_CACHE``
# stays as an alias of the memo's backing dict: tests and older call sites
# inspect it directly, and ScheduleMemo mutates it in place.
SCHEDULE_MEMO = ScheduleMemo(max_entries=512)
_SCHEDULE_CACHE = SCHEDULE_MEMO.entries


def clear_schedule_cache() -> None:
    SCHEDULE_MEMO.clear()


def _memoized(key: tuple, builder):
    return SCHEDULE_MEMO.get(key, builder)


def _bids_key(buffer_ids: dict[int, int] | None) -> tuple | None:
    return tuple(sorted(buffer_ids.items())) if buffer_ids else None


def select_allreduce_algorithm(
    num_ranks: int,
    nbytes: int,
    *,
    nodes: int,
    override: str | None = None,
) -> str:
    """MVAPICH2-style size/topology heuristic."""
    if override is not None:
        return override
    if num_ranks <= 1:
        return "ring"
    if nbytes <= 32 * KIB and is_power_of_two(num_ranks):
        return "recursive_doubling"
    if nodes > 1:
        return "hierarchical"
    return "ring"


def _ring_steps(
    ranks: list[int],
    nbytes: int,
    buffer_ids: dict[int, int] | None,
    dtype_bytes: int = FLOAT32_BYTES,
) -> tuple[RingSchedule, RingSchedule]:
    """Chunked-ring schedules: (reduce-scatter steps, allgather steps).

    Both phases walk the identical transfer grid (only ``reduce_after``
    differs at run time), so they share one lazily-materialized
    :class:`RingSchedule`.
    """
    sched = RingSchedule.chunked(ranks, nbytes, buffer_ids, dtype_bytes)
    return sched, sched


def _recursive_doubling_steps(
    ranks: list[int],
    nbytes: int,
    buffer_ids: dict[int, int] | None,
    dtype_bytes: int = FLOAT32_BYTES,
) -> list[list[PairTransfer]]:
    p = len(ranks)
    if not is_power_of_two(p):
        raise MpiError(f"recursive doubling requires power-of-two ranks, got {p}")

    def bid(rank: int) -> int | None:
        return buffer_ids.get(rank) if buffer_ids else None

    steps = []
    distance = 1
    while distance < p:
        transfers = []
        for i, rank in enumerate(ranks):
            peer = ranks[i ^ distance]
            transfers.append(
                PairTransfer(rank, peer, nbytes, bid(rank), bid(peer),
                             dtype_bytes=dtype_bytes)
            )
        steps.append(transfers)
        distance *= 2
    return steps


def _halving_doubling_steps(
    ranks: list[int],
    nbytes: int,
    buffer_ids: dict[int, int] | None,
    dtype_bytes: int = FLOAT32_BYTES,
) -> tuple[list[list[PairTransfer]], list[list[PairTransfer]]]:
    """Rabenseifner: recursive-halving reduce-scatter + recursive-doubling
    allgather."""
    p = len(ranks)
    if not is_power_of_two(p):
        raise MpiError(f"reduce_scatter_allgather requires power-of-two ranks, got {p}")

    def bid(rank: int) -> int | None:
        return buffer_ids.get(rank) if buffer_ids else None

    rs_steps = []
    distance = p // 2
    size = nbytes // 2
    while distance >= 1:
        transfers = []
        for i, rank in enumerate(ranks):
            peer = ranks[i ^ distance]
            transfers.append(PairTransfer(rank, peer, max(size, 1), bid(rank), bid(peer),
                                          dtype_bytes=dtype_bytes))
        rs_steps.append(transfers)
        distance //= 2
        size //= 2
    ag_steps = []
    distance = 1
    size = nbytes // p
    while distance < p:
        transfers = []
        for i, rank in enumerate(ranks):
            peer = ranks[i ^ distance]
            transfers.append(PairTransfer(rank, peer, max(size, 1), bid(rank), bid(peer),
                                          dtype_bytes=dtype_bytes))
        ag_steps.append(transfers)
        distance *= 2
        size *= 2
    return rs_steps, ag_steps


def _binomial_reduce_steps(
    group: list[int],
    nbytes: int,
    buffer_ids: dict[int, int] | None,
    dtype_bytes: int = FLOAT32_BYTES,
) -> list[list[PairTransfer]]:
    """Binomial-tree reduce onto group[0]."""
    def bid(rank: int) -> int | None:
        return buffer_ids.get(rank) if buffer_ids else None

    g = len(group)
    steps = []
    distance = 1
    while distance < g:
        transfers = []
        for i in range(0, g, 2 * distance):
            j = i + distance
            if j < g:
                transfers.append(
                    PairTransfer(group[j], group[i], nbytes,
                                 bid(group[j]), bid(group[i]),
                                 dtype_bytes=dtype_bytes)
                )
        steps.append(transfers)
        distance *= 2
    return steps


def _binomial_bcast_steps(
    group: list[int],
    nbytes: int,
    buffer_ids: dict[int, int] | None,
    dtype_bytes: int = FLOAT32_BYTES,
) -> list[list[PairTransfer]]:
    """Binomial-tree broadcast from group[0] (reverse of the reduce)."""
    return [
        [
            PairTransfer(t.dst, t.src, t.nbytes, t.dst_buffer, t.src_buffer,
                         dtype_bytes=t.dtype_bytes)
            for t in step
        ]
        for step in reversed(
            _binomial_reduce_steps(group, nbytes, buffer_ids, dtype_bytes))
    ]


def _hierarchical_intra_steps(
    groups: list[list[int]],
    nbytes: int,
    buffer_ids: dict[int, int] | None,
    dtype_bytes: int = FLOAT32_BYTES,
) -> tuple[list[list[PairTransfer]], list[list[PairTransfer]]]:
    """Merged intra-node (reduce, bcast) schedules for all node groups.

    Intra-node phases run concurrently across nodes, so per-node binomial
    schedules merge step-by-step.  Each group's schedule is built once and
    indexed per depth (the depth loop used to rebuild it quadratically).
    """
    reduce_per_group = [
        _binomial_reduce_steps(g, nbytes, buffer_ids, dtype_bytes) for g in groups
    ]
    bcast_per_group = [
        _binomial_bcast_steps(g, nbytes, buffer_ids, dtype_bytes) for g in groups
    ]

    def merge(per_group: list[list[list[PairTransfer]]]) -> list[list[PairTransfer]]:
        merged_steps = []
        for depth in range(max((len(s) for s in per_group), default=0)):
            merged: list[PairTransfer] = []
            for steps in per_group:
                if depth < len(steps):
                    merged.extend(steps[depth])
            if merged:
                merged_steps.append(merged)
        return merged_steps

    return merge(reduce_per_group), merge(bcast_per_group)


def allreduce_timing(
    coster: StepCoster,
    ranks: list[int],
    nbytes: int,
    *,
    buffer_ids: dict[int, int] | None = None,
    algorithm: str | None = None,
    dtype_bytes: int = FLOAT32_BYTES,
) -> CollectiveTiming:
    """Time one allreduce over ``ranks`` in the coster's execution mode."""
    p = len(ranks)
    transport = coster.transport
    node_of = {r: transport.ranks[r].node_id for r in ranks}
    nodes = len(set(node_of.values()))
    algorithm = select_allreduce_algorithm(
        p, nbytes, nodes=nodes, override=algorithm or transport.config.allreduce_algorithm
    )
    if p <= 1 or nbytes == 0:
        return CollectiveTiming("allreduce", algorithm, nbytes, p, 0.0, coster.mode)

    segments: dict[str, float] = {}
    rank_key = tuple(ranks)
    bid_key = _bids_key(buffer_ids)
    if algorithm == "ring":
        rs, ag = _memoized(
            ("ring", rank_key, nbytes, bid_key, dtype_bytes),
            lambda: _ring_steps(ranks, nbytes, buffer_ids, dtype_bytes),
        )
        segments["reduce_scatter"] = coster.run_steps(rs, reduce_after=True)
        segments["allgather"] = coster.run_steps(ag, reduce_after=False)
    elif algorithm == "recursive_doubling":
        if not is_power_of_two(p):
            return allreduce_timing(
                coster, ranks, nbytes, buffer_ids=buffer_ids, algorithm="ring",
                dtype_bytes=dtype_bytes,
            )
        steps = _memoized(
            ("rd", rank_key, nbytes, bid_key, dtype_bytes),
            lambda: _recursive_doubling_steps(ranks, nbytes, buffer_ids, dtype_bytes),
        )
        segments["exchange"] = coster.run_steps(steps, reduce_after=True)
    elif algorithm == "reduce_scatter_allgather":
        if not is_power_of_two(p):
            return allreduce_timing(
                coster, ranks, nbytes, buffer_ids=buffer_ids, algorithm="ring",
                dtype_bytes=dtype_bytes,
            )
        rs, ag = _memoized(
            ("rsag", rank_key, nbytes, bid_key, dtype_bytes),
            lambda: _halving_doubling_steps(ranks, nbytes, buffer_ids, dtype_bytes),
        )
        segments["reduce_scatter"] = coster.run_steps(rs, reduce_after=True)
        segments["allgather"] = coster.run_steps(ag, reduce_after=False)
    elif algorithm == "hierarchical":
        by_node: dict[int, list[int]] = {}
        for r in ranks:
            by_node.setdefault(node_of[r], []).append(r)
        groups = [sorted(g) for _, g in sorted(by_node.items())]
        group_key = tuple(tuple(g) for g in groups)
        leaders = [g[0] for g in groups]
        intra_reduce, intra_bcast = _memoized(
            ("hier-intra", group_key, nbytes, bid_key, dtype_bytes),
            lambda: _hierarchical_intra_steps(groups, nbytes, buffer_ids, dtype_bytes),
        )
        segments["intra_reduce"] = coster.run_steps(intra_reduce, reduce_after=True)
        if len(leaders) > 1:
            rs, ag = _memoized(
                ("ring", tuple(leaders), nbytes, bid_key, dtype_bytes),
                lambda: _ring_steps(leaders, nbytes, buffer_ids, dtype_bytes),
            )
            segments["inter_reduce_scatter"] = coster.run_steps(rs, reduce_after=True)
            segments["inter_allgather"] = coster.run_steps(ag, reduce_after=False)
        segments["intra_bcast"] = coster.run_steps(intra_bcast, reduce_after=False)
    else:  # pragma: no cover - selection guards this
        raise MpiError(f"unknown allreduce algorithm {algorithm!r}")

    total = sum(segments.values())
    return CollectiveTiming(
        "allreduce", algorithm, nbytes, p, total, coster.mode, segments
    )


def expected_message_count(algorithm: str, p: int) -> int:
    """Messages per rank (used by profiling expectations in tests)."""
    if p <= 1:
        return 0
    if algorithm == "ring":
        return 2 * (p - 1)
    if algorithm in ("recursive_doubling",):
        return int(math.log2(p))
    if algorithm == "reduce_scatter_allgather":
        return 2 * int(math.log2(p))
    raise MpiError(f"no message-count formula for {algorithm!r}")
