"""MPI_Allgather: ring algorithm.

Used by Horovod's coordinator for the tensor-negotiation metadata exchange
and by the top-k sparse gradient exchange (each rank contributes its own
(index, value) payload; no in-network reduction is possible).
"""

from __future__ import annotations

from repro.comm.cost import FLOAT32_BYTES
from repro.mpi.collectives.base import CollectiveTiming, RingSchedule, StepCoster


def allgather_timing(
    coster: StepCoster,
    ranks: list[int],
    nbytes_per_rank: int,
    *,
    buffer_ids: dict[int, int] | None = None,
    dtype_bytes: int = FLOAT32_BYTES,
) -> CollectiveTiming:
    """Each rank contributes ``nbytes_per_rank``; all end with everything."""
    p = len(ranks)
    if p <= 1:
        return CollectiveTiming("allgather", "ring", nbytes_per_rank, p, 0.0, coster.mode)

    steps = RingSchedule.uniform(ranks, nbytes_per_rank, buffer_ids, dtype_bytes)
    total = coster.run_steps(steps)
    return CollectiveTiming(
        "allgather", "ring", nbytes_per_rank, p, total, coster.mode,
        {"ring": total},
    )
