"""Shared infrastructure for collective timing engines."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.comm.cost import FLOAT32_BYTES, reduce_time
from repro.cuda.kernels import KernelCostModel
from repro.errors import MpiError
from repro.mpi.transports import TransportKind, TransportModel


class ExecutionMode(enum.Enum):
    """How collective time is obtained."""

    ANALYTIC = "analytic"
    EVENT = "event"


@dataclass
class CollectiveTiming:
    """Result of timing one collective operation."""

    op: str
    algorithm: str
    nbytes: int
    num_ranks: int
    time: float
    mode: ExecutionMode
    segments: dict[str, float] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"<{self.op}[{self.algorithm}] n={self.nbytes}B p={self.num_ranks} "
            f"t={self.time * 1e3:.3f}ms ({self.mode.value})>"
        )


@dataclass(frozen=True)
class PairTransfer:
    """One point-to-point transfer inside an algorithm step.

    ``buffer_extent`` is the full size of the communication buffer this
    transfer's chunk belongs to: IB registration pins the whole buffer
    once per MPI call, not each chunk.

    ``dtype_bytes`` is the wire element width; reduction kernels process
    ``nbytes / dtype_bytes`` elements, so compressed (2-byte) payloads
    reduce twice as many elements per byte as fp32.
    """

    src: int
    dst: int
    nbytes: int
    src_buffer: int | None = None
    dst_buffer: int | None = None
    buffer_extent: int | None = None
    dtype_bytes: int = FLOAT32_BYTES


class RingSchedule:
    """Lazily materialized ring-phase step schedule.

    A ring phase touches only ~2p distinct transfers (p neighbour pairs x
    at most two chunk sizes) yet walks them across p-1 steps, so eagerly
    materializing the full ``p * (p-1)`` transfer grid dominates
    schedule-build time at high rank counts.  This sequence behaves like
    the list-of-steps it replaces — iteration and indexing materialize
    step lists on demand from a pool of shared frozen transfers — while
    exposing the compact descriptor the analytic fast path consumes
    directly (``repro.sim.fastpath`` computes ring makespans from the
    descriptor without ever materializing the grid).

    Chunk layout follows :func:`chunk_sizes`: the first ``rem`` chunks
    carry ``chunk_big`` bytes and the rest ``chunk_small``; step ``s``
    transfer ``i`` carries chunk ``(i - s) % p``.
    """

    is_ring_schedule = True

    __slots__ = (
        "ranks",
        "chunk_small",
        "chunk_big",
        "rem",
        "extent",
        "buffer_ids",
        "dtype_bytes",
        "_small",
        "_big",
        "_steps",
    )

    def __init__(
        self,
        ranks: list[int],
        *,
        chunk_small: int,
        chunk_big: int,
        rem: int,
        extent: int | None,
        buffer_ids: dict[int, int] | None,
        dtype_bytes: int = FLOAT32_BYTES,
    ):
        self.ranks = list(ranks)
        self.chunk_small = int(chunk_small)
        self.chunk_big = int(chunk_big)
        self.rem = int(rem)
        self.extent = extent
        self.buffer_ids = buffer_ids
        self.dtype_bytes = int(dtype_bytes)
        self._small: list[PairTransfer] | None = None
        self._big: list[PairTransfer] | None = None
        self._steps: list[list[PairTransfer]] | None = None

    @classmethod
    def chunked(
        cls,
        ranks: list[int],
        nbytes: int,
        buffer_ids: dict[int, int] | None,
        dtype_bytes: int = FLOAT32_BYTES,
    ) -> "RingSchedule":
        """Chunked allreduce ring: ``nbytes`` split near-equally over p."""
        base, rem = divmod(int(nbytes), max(len(ranks), 1))
        return cls(
            ranks,
            chunk_small=base,
            chunk_big=base + 1,
            rem=rem,
            extent=int(nbytes),
            buffer_ids=buffer_ids,
            dtype_bytes=dtype_bytes,
        )

    @classmethod
    def uniform(
        cls,
        ranks: list[int],
        nbytes: int,
        buffer_ids: dict[int, int] | None,
        dtype_bytes: int = FLOAT32_BYTES,
    ) -> "RingSchedule":
        """Allgather ring: every transfer carries the same ``nbytes``."""
        return cls(
            ranks,
            chunk_small=int(nbytes),
            chunk_big=int(nbytes),
            rem=0,
            extent=None,
            buffer_ids=buffer_ids,
            dtype_bytes=dtype_bytes,
        )

    def __len__(self) -> int:
        return max(len(self.ranks) - 1, 0)

    def _bid(self, rank: int) -> int | None:
        return self.buffer_ids.get(rank) if self.buffer_ids else None

    def pools(self) -> tuple[list[PairTransfer], list[PairTransfer]]:
        """The distinct transfers: (small-chunk pool, big-chunk pool)."""
        if self._small is None:
            ranks = self.ranks
            p = len(ranks)

            def build(nbytes: int) -> list[PairTransfer]:
                return [
                    PairTransfer(
                        src=rank,
                        dst=ranks[(i + 1) % p],
                        nbytes=nbytes,
                        src_buffer=self._bid(rank),
                        dst_buffer=self._bid(ranks[(i + 1) % p]),
                        buffer_extent=self.extent,
                        dtype_bytes=self.dtype_bytes,
                    )
                    for i, rank in enumerate(ranks)
                ]

            self._small = build(self.chunk_small)
            self._big = self._small if self.rem == 0 else build(self.chunk_big)
        return self._small, self._big

    def step(self, s: int) -> list[PairTransfer]:
        """Materialize one step's transfer list from the pools."""
        p = len(self.ranks)
        small, big = self.pools()
        rem = self.rem
        if rem == 0:
            return list(small)
        return [big[i] if (i - s) % p < rem else small[i] for i in range(p)]

    def _materialize(self) -> list[list[PairTransfer]]:
        if self._steps is None:
            self._steps = [self.step(s) for s in range(len(self))]
        return self._steps

    def __iter__(self):
        return iter(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]


class StepCoster:
    """Times one BSP step (a set of concurrent transfers) in either mode.

    Analytic mode approximates contention: staged transfers sharing a node's
    staging engines serialize in ``ceil(k / engines)`` waves; everything
    else is assumed conflict-free (algorithms are designed that way).
    """

    def __init__(self, transport: TransportModel, mode: ExecutionMode):
        self.transport = transport
        self.mode = mode
        self.kernel_model = KernelCostModel(transport.cluster.spec.node.gpu)
        self.cpu = transport.cluster.spec.node.cpu
        # Optional repro.sim.fastpath.FastPathSession; when attached (via
        # enable_fastpath), analytic schedule walks replay memoized
        # transfers instead of re-running the full cost model.
        self.fastpath = None

    # -- reduction compute costs ------------------------------------------------
    def gpu_reduce_time(self, nbytes: int, dtype_bytes: int = FLOAT32_BYTES) -> float:
        return self.kernel_model.device_reduce_time(nbytes, dtype_bytes)

    def host_reduce_time(self, nbytes: int, dtype_bytes: int = FLOAT32_BYTES) -> float:
        return reduce_time(nbytes, dtype_bytes, reduce_flops=self.cpu.reduce_flops)

    def reduce_time_for(
        self, kind: TransportKind, nbytes: int, dtype_bytes: int = FLOAT32_BYTES
    ) -> float:
        """Reduction executes where the data landed: host for staged paths."""
        if kind in (TransportKind.HOST_STAGED, TransportKind.SMP_EAGER,
                    TransportKind.STAGED_INTER):
            return self.host_reduce_time(nbytes, dtype_bytes)
        return self.gpu_reduce_time(nbytes, dtype_bytes)

    # -- wire corruption (analytic path) -----------------------------------------
    def corruption_active(self) -> bool:
        """True when an attached injector has a live wire-corruption window.

        Checked against the cluster clock (constant during an analytic
        walk), so chaos plans use permanent windows for analytic runs —
        timed windows belong to the event-driven transport path.
        """
        faults = self.transport.faults
        return faults is not None and faults.wire_corruption_active(
            self.transport.cluster.env.now
        )

    def corruption_surcharge(
        self, src: int, dst: int, nbytes: int, t_plain: float
    ) -> float:
        """CRC-detected retransmit charge for one delivered transfer.

        Mirrors the event path's ladder: each corrupt delivery is caught
        by the receiver's CRC pass and retransmitted, charging the CRC
        scan plus a full re-send of the plain transfer.  Every attempt
        consumes exactly one roll of the injector's corruption stream, so
        the exact and fast engines stay bit-identical.  A transfer
        corrupted past the retry budget raises
        :class:`~repro.errors.MpiTimeoutError`, like a lost message.
        """
        from repro.comm.integrity import crc_check_time
        from repro.errors import MpiTimeoutError

        faults = self.transport.faults
        if faults is None or src == dst:
            return 0.0
        now = self.transport.cluster.env.now
        retry = self.transport.retry
        extra = 0.0
        corrupt = 0
        while faults.corruption_verdict(src, dst, now):
            corrupt += 1
            faults.record(
                "crc-detected", now, src=src, dst=dst,
                detail=f"{nbytes}B retransmit",
            )
            extra += crc_check_time(nbytes) + t_plain
            if corrupt > retry.max_retries:
                raise MpiTimeoutError(
                    f"message {src}->{dst} ({nbytes}B) corrupted "
                    f"{corrupt} time(s); retry budget "
                    f"({retry.max_retries}) exhausted"
                )
        return extra

    # -- step timing ---------------------------------------------------------------
    def step_time_analytic(
        self, transfers: list[PairTransfer], *, reduce_after: bool = False
    ) -> float:
        """Makespan of concurrent transfers under the contention model."""
        if not transfers:
            return 0.0
        staged_by_node: dict[int, list[float]] = {}
        other_max = 0.0
        engines = self.transport.cluster.spec.node.staging_engines
        corrupting = self.corruption_active()
        for t in transfers:
            bd = self.transport.cost(
                t.src, t.dst, t.nbytes,
                src_buffer=t.src_buffer, dst_buffer=t.dst_buffer,
                buffer_extent=t.buffer_extent,
            )
            total = bd.total
            if reduce_after:
                total += self.reduce_time_for(bd.kind, t.nbytes, t.dtype_bytes)
            if corrupting:
                total += self.corruption_surcharge(
                    t.src, t.dst, t.nbytes, bd.total
                )
            if bd.kind in (
                TransportKind.HOST_STAGED,
                TransportKind.SMP_EAGER,
                TransportKind.STAGED_INTER,
            ):
                node = self.transport.ranks[t.src].node_id
                staged_by_node.setdefault(node, []).append(total)
            else:
                other_max = max(other_max, total)
        staged_max = 0.0
        for times in staged_by_node.values():
            waves = math.ceil(len(times) / engines)
            staged_max = max(staged_max, waves * max(times))
        return max(other_max, staged_max)

    def step_proc(self, transfers: list[PairTransfer], *, reduce_after: bool = False):
        """Event-mode process executing one BSP step."""
        env = self.transport.cluster.env

        def one(t: PairTransfer):
            kind = yield env.process(
                self.transport.transfer_proc(
                    t.src, t.dst, t.nbytes,
                    src_buffer=t.src_buffer, dst_buffer=t.dst_buffer,
                    buffer_extent=t.buffer_extent,
                )
            )
            if reduce_after:
                yield env.timeout(
                    self.reduce_time_for(kind, t.nbytes, t.dtype_bytes))

        procs = [env.process(one(t)) for t in transfers]
        if procs:
            yield env.all_of(procs)

    def run_steps(
        self,
        steps: list[list[PairTransfer]],
        *,
        reduce_after: bool = False,
    ) -> float:
        """Time a full step schedule in the configured mode."""
        if self.mode is ExecutionMode.ANALYTIC:
            if self.fastpath is not None:
                return self.fastpath.run_steps(
                    self, steps, reduce_after=reduce_after
                )
            return sum(
                self.step_time_analytic(step, reduce_after=reduce_after)
                for step in steps
            )
        env = self.transport.cluster.env
        start = env.now

        def driver():
            for step in steps:
                yield env.process(self.step_proc(step, reduce_after=reduce_after))

        proc = env.process(driver())
        env.run(until=proc)
        return env.now - start


def chunk_sizes(nbytes: int, parts: int) -> list[int]:
    """Split ``nbytes`` into ``parts`` near-equal element-aligned chunks."""
    if parts < 1:
        raise MpiError(f"cannot split into {parts} parts")
    base, rem = divmod(int(nbytes), parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0
