"""Collective algorithm implementations (timing engines).

Each algorithm provides an *analytic* estimator (closed-form alpha-beta with
staging-contention correction) and an *event-driven* executor (BSP-style:
every algorithm step spawns its transfer processes on the shared event
engine and waits for all of them, so link and staging-engine contention are
simulated, not estimated).  Tests cross-validate the two engines.
"""

from repro.mpi.collectives.base import CollectiveTiming, ExecutionMode, StepCoster
from repro.mpi.collectives.allreduce import (
    allreduce_timing,
    select_allreduce_algorithm,
)
from repro.mpi.collectives.bcast import bcast_timing
from repro.mpi.collectives.allgather import allgather_timing
from repro.mpi.collectives.reduce import reduce_timing
from repro.mpi.collectives.reduce_scatter import reduce_scatter_timing
from repro.mpi.collectives.barrier import barrier_timing
from repro.mpi.collectives.gather import (
    alltoall_timing,
    gather_timing,
    scatter_timing,
)

__all__ = [
    "CollectiveTiming",
    "ExecutionMode",
    "StepCoster",
    "allreduce_timing",
    "select_allreduce_algorithm",
    "bcast_timing",
    "allgather_timing",
    "reduce_timing",
    "reduce_scatter_timing",
    "barrier_timing",
    "gather_timing",
    "scatter_timing",
    "alltoall_timing",
]
