"""MPI_Gather / MPI_Scatter / MPI_Alltoall timing.

Used by Horovod's coordinator (gather of readiness bitmaps) and available
for completeness of the MPI surface.
"""

from __future__ import annotations

from repro.mpi.collectives.base import CollectiveTiming, PairTransfer, StepCoster


def gather_timing(
    coster: StepCoster,
    ranks: list[int],
    nbytes_per_rank: int,
    *,
    root: int | None = None,
) -> CollectiveTiming:
    """All non-root ranks send their contribution to the root.

    Modelled as MPI's linear gather (correct for the small message sizes
    coordination uses): the root's ingest serializes arrivals from
    different nodes only at its own NIC/links, which the step engine
    captures by scheduling all sends in one step.
    """
    p = len(ranks)
    if p <= 1 or nbytes_per_rank == 0:
        return CollectiveTiming("gather", "linear", nbytes_per_rank, p, 0.0,
                                coster.mode)
    root = ranks[0] if root is None else root
    transfers = [
        PairTransfer(r, root, nbytes_per_rank) for r in ranks if r != root
    ]
    total = coster.run_steps([transfers])
    return CollectiveTiming(
        "gather", "linear", nbytes_per_rank, p, total, coster.mode,
        {"ingest": total},
    )


def scatter_timing(
    coster: StepCoster,
    ranks: list[int],
    nbytes_per_rank: int,
    *,
    root: int | None = None,
) -> CollectiveTiming:
    """Root sends a distinct block to every other rank (linear scatter)."""
    p = len(ranks)
    if p <= 1 or nbytes_per_rank == 0:
        return CollectiveTiming("scatter", "linear", nbytes_per_rank, p, 0.0,
                                coster.mode)
    root = ranks[0] if root is None else root
    transfers = [
        PairTransfer(root, r, nbytes_per_rank) for r in ranks if r != root
    ]
    total = coster.run_steps([transfers])
    return CollectiveTiming(
        "scatter", "linear", nbytes_per_rank, p, total, coster.mode,
        {"egress": total},
    )


def alltoall_timing(
    coster: StepCoster,
    ranks: list[int],
    nbytes_per_pair: int,
) -> CollectiveTiming:
    """Pairwise-exchange alltoall: p-1 rounds, round k pairs rank i with
    rank i XOR k (power-of-two worlds) or (i + k) mod p otherwise."""
    p = len(ranks)
    if p <= 1 or nbytes_per_pair == 0:
        return CollectiveTiming("alltoall", "pairwise", nbytes_per_pair, p, 0.0,
                                coster.mode)
    steps: list[list[PairTransfer]] = []
    for k in range(1, p):
        transfers = []
        for i, rank in enumerate(ranks):
            peer = ranks[(i + k) % p]
            transfers.append(PairTransfer(rank, peer, nbytes_per_pair))
        steps.append(transfers)
    total = coster.run_steps(steps)
    return CollectiveTiming(
        "alltoall", "pairwise", nbytes_per_pair, p, total, coster.mode,
        {"rounds": total},
    )
