"""SPMD collective implementations over the point-to-point fabric.

The production timing engines (:mod:`repro.mpi.collectives.allreduce`)
schedule BSP steps directly.  This module implements ring allreduce the
way an MPI library actually executes it — every rank runs its own process
issuing ``sendrecv`` calls — and serves two purposes:

* **validation**: the BSP engine's timing must agree with the true
  message-passing execution (tests cross-check them);
* **fidelity**: per-rank skew propagates naturally here (a late rank
  delays only the neighbours that wait on it, not the whole step).

Functional reduction is performed for real when ranks provide arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import MpiError
from repro.mpi.collectives.base import chunk_sizes
from repro.mpi.datatypes import ReduceOp
from repro.mpi.p2p import P2PFabric


@dataclass
class SpmdResult:
    """Per-rank completion times of one SPMD collective."""

    finish_times: dict[int, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return max(self.finish_times.values()) if self.finish_times else 0.0


def ring_allreduce_spmd(
    fabric: P2PFabric,
    ranks: list[int],
    nbytes: int,
    *,
    data: Optional[dict[int, np.ndarray]] = None,
    op: ReduceOp = ReduceOp.SUM,
    start_times: Optional[dict[int, float]] = None,
) -> SpmdResult:
    """Run a chunked ring allreduce as real per-rank processes.

    ``data`` maps rank -> local array (all same length); on completion every
    array holds the reduction.  ``start_times`` lets callers skew ranks
    (e.g. straggler studies).  Must be called on a fresh/quiet environment;
    this function drives ``env.run()``.
    """
    p = len(ranks)
    env = fabric.env
    result = SpmdResult()
    if p == 1:
        result.finish_times[ranks[0]] = env.now
        return result
    if data is not None:
        lengths = {arr.size for arr in data.values()}
        if len(lengths) != 1:
            raise MpiError("spmd allreduce arrays must share a length")
    elements = next(iter(data.values())).size if data else 0
    chunks_bytes = chunk_sizes(nbytes, p)
    chunk_elems = chunk_sizes(elements, p) if data else [0] * p
    elem_offsets = np.cumsum([0] + chunk_elems)

    # working copies so the reduction is done chunk-wise like real MPI
    work: dict[int, np.ndarray] = (
        {r: np.array(data[r], copy=True) for r in ranks} if data else {}
    )

    def chunk_view(rank: int, index: int) -> np.ndarray:
        return work[rank][elem_offsets[index]: elem_offsets[index + 1]]

    def rank_proc(i: int, rank: int):
        left = ranks[(i - 1) % p]
        right = ranks[(i + 1) % p]
        if start_times and start_times.get(rank, 0.0) > 0:
            yield env.timeout(start_times[rank])
        # phase 1: reduce-scatter
        for step in range(p - 1):
            send_index = (i - step) % p
            recv_index = (i - step - 1) % p
            send_kwargs = {"nbytes": chunks_bytes[send_index], "tag": step}
            recv_kwargs = {"nbytes": chunks_bytes[recv_index], "tag": step}
            if work:
                send_kwargs["data"] = chunk_view(rank, send_index)
                incoming = np.empty(chunk_elems[recv_index], dtype=np.float32)
                recv_kwargs["out"] = incoming
            yield from fabric.sendrecv(
                rank, dst=right, src=left,
                send_kwargs=send_kwargs, recv_kwargs=recv_kwargs,
            )
            if work:
                view = chunk_view(rank, recv_index)
                op.ufunc(view, incoming, out=view)
        # phase 2: allgather
        for step in range(p - 1):
            send_index = (i - step + 1) % p
            recv_index = (i - step) % p
            send_kwargs = {"nbytes": chunks_bytes[send_index], "tag": p + step}
            recv_kwargs = {"nbytes": chunks_bytes[recv_index], "tag": p + step}
            if work:
                send_kwargs["data"] = chunk_view(rank, send_index)
                incoming = np.empty(chunk_elems[recv_index], dtype=np.float32)
                recv_kwargs["out"] = incoming
            yield from fabric.sendrecv(
                rank, dst=right, src=left,
                send_kwargs=send_kwargs, recv_kwargs=recv_kwargs,
            )
            if work:
                chunk_view(rank, recv_index)[...] = incoming
        result.finish_times[rank] = env.now

    for i, rank in enumerate(ranks):
        env.process(rank_proc(i, rank), name=f"ring-rank{rank}")
    env.run()

    if data is not None:
        for rank in ranks:
            np.copyto(data[rank], work[rank])
    return result


def hierarchical_allreduce_spmd(
    fabric: P2PFabric,
    ranks: list[int],
    nbytes: int,
    *,
    data: Optional[dict[int, np.ndarray]] = None,
    op: ReduceOp = ReduceOp.SUM,
) -> SpmdResult:
    """Two-level allreduce as real per-rank processes.

    Phase 1: binomial reduce onto each node's leader (lowest rank on the
    node); phase 2: ring allreduce among leaders; phase 3: binomial
    broadcast within each node.  This is the production algorithm of
    :func:`repro.mpi.collectives.allreduce.allreduce_timing` executed as
    true message passing, used to validate the BSP scheduler.
    """
    env = fabric.env
    result = SpmdResult()
    p = len(ranks)
    if p == 1:
        result.finish_times[ranks[0]] = env.now
        return result
    by_node: dict[int, list[int]] = {}
    for r in sorted(ranks):
        by_node.setdefault(fabric.transport.ranks[r].node_id, []).append(r)
    groups = [g for _, g in sorted(by_node.items())]
    leaders = [g[0] for g in groups]
    work: dict[int, np.ndarray] = (
        {r: np.array(data[r], copy=True) for r in ranks} if data else {}
    )
    inter_done = env.event(name="inter-phase-done")

    def rank_proc(group: list[int], rank: int):
        position = group.index(rank)
        # phase 1: binomial reduce onto group[0]
        distance = 1
        while distance < len(group):
            if position % (2 * distance) == distance:
                peer = group[position - distance]
                kwargs = {"nbytes": nbytes, "tag": 1000 + distance}
                if work:
                    kwargs["data"] = work[rank]
                yield from fabric.send(rank, peer, **kwargs)
            elif position % (2 * distance) == 0 and position + distance < len(group):
                peer = group[position + distance]
                kwargs = {"nbytes": nbytes, "tag": 1000 + distance}
                incoming = None
                if work:
                    incoming = np.empty_like(work[rank])
                    kwargs["out"] = incoming
                yield from fabric.recv(rank, source=peer, **kwargs)
                if work is not None and incoming is not None:
                    op.ufunc(work[rank], incoming, out=work[rank])
            distance *= 2
        # phase 2: leaders ring-allreduce among themselves
        if rank == group[0]:
            if len(leaders) > 1:
                yield from _leader_ring(rank)
            if not inter_done.triggered:
                inter_done.succeed()
            else:
                yield env.timeout(0)
        else:
            yield inter_done
        # phase 3: binomial broadcast back down the same tree
        distance = 1
        while distance * 2 < len(group):
            distance *= 2
        while distance >= 1:
            if position % (2 * distance) == 0 and position + distance < len(group):
                peer = group[position + distance]
                kwargs = {"nbytes": nbytes, "tag": 2000 + distance}
                if work:
                    kwargs["data"] = work[rank]
                yield from fabric.send(rank, peer, **kwargs)
            elif position % (2 * distance) == distance:
                peer = group[position - distance]
                kwargs = {"nbytes": nbytes, "tag": 2000 + distance}
                if work:
                    kwargs["out"] = work[rank]
                yield from fabric.recv(rank, source=peer, **kwargs)
            distance //= 2
        result.finish_times[rank] = env.now

    def _leader_ring(rank: int):
        i = leaders.index(rank)
        n_leaders = len(leaders)
        left = leaders[(i - 1) % n_leaders]
        right = leaders[(i + 1) % n_leaders]
        chunks_bytes = chunk_sizes(nbytes, n_leaders)
        elements = work[rank].size if work else 0
        chunk_elems = chunk_sizes(elements, n_leaders)
        offsets = np.cumsum([0] + chunk_elems)

        def view(index: int) -> np.ndarray:
            return work[rank][offsets[index]: offsets[index + 1]]

        for step in range(n_leaders - 1):  # reduce-scatter
            send_index = (i - step) % n_leaders
            recv_index = (i - step - 1) % n_leaders
            send_kwargs = {"nbytes": chunks_bytes[send_index], "tag": 3000 + step}
            recv_kwargs = {"nbytes": chunks_bytes[recv_index], "tag": 3000 + step}
            incoming = None
            if work:
                send_kwargs["data"] = view(send_index)
                incoming = np.empty(chunk_elems[recv_index], dtype=np.float32)
                recv_kwargs["out"] = incoming
            yield from fabric.sendrecv(rank, dst=right, src=left,
                                       send_kwargs=send_kwargs,
                                       recv_kwargs=recv_kwargs)
            if incoming is not None:
                target = view(recv_index)
                op.ufunc(target, incoming, out=target)
        for step in range(n_leaders - 1):  # allgather
            send_index = (i - step + 1) % n_leaders
            recv_index = (i - step) % n_leaders
            send_kwargs = {"nbytes": chunks_bytes[send_index], "tag": 4000 + step}
            recv_kwargs = {"nbytes": chunks_bytes[recv_index], "tag": 4000 + step}
            incoming = None
            if work:
                send_kwargs["data"] = view(send_index)
                incoming = np.empty(chunk_elems[recv_index], dtype=np.float32)
                recv_kwargs["out"] = incoming
            yield from fabric.sendrecv(rank, dst=right, src=left,
                                       send_kwargs=send_kwargs,
                                       recv_kwargs=recv_kwargs)
            if incoming is not None:
                view(recv_index)[...] = incoming

    for group in groups:
        for rank in group:
            env.process(rank_proc(group, rank), name=f"hier-rank{rank}")
    env.run()

    if data is not None:
        for rank in ranks:
            np.copyto(data[rank], work[rank])
    return result
