"""MPI_Barrier: dissemination algorithm (zero-byte control messages)."""

from __future__ import annotations

import math

from repro.mpi.collectives.base import CollectiveTiming, PairTransfer, StepCoster

#: control messages are a few bytes on the wire
_CONTROL_BYTES = 8


def barrier_timing(coster: StepCoster, ranks: list[int]) -> CollectiveTiming:
    p = len(ranks)
    if p <= 1:
        return CollectiveTiming("barrier", "dissemination", 0, p, 0.0, coster.mode)
    rounds = math.ceil(math.log2(p))
    steps: list[list[PairTransfer]] = []
    for k in range(rounds):
        distance = 2**k
        transfers = [
            PairTransfer(rank, ranks[(i + distance) % p], _CONTROL_BYTES)
            for i, rank in enumerate(ranks)
        ]
        steps.append(transfers)
    total = coster.run_steps(steps)
    return CollectiveTiming(
        "barrier", "dissemination", 0, p, total, coster.mode, {"rounds": total}
    )
