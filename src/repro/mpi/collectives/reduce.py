"""MPI_Reduce: binomial tree onto a root."""

from __future__ import annotations

from repro.mpi.collectives.base import CollectiveTiming, PairTransfer, StepCoster


def reduce_timing(
    coster: StepCoster,
    ranks: list[int],
    nbytes: int,
    *,
    root: int | None = None,
    buffer_ids: dict[int, int] | None = None,
) -> CollectiveTiming:
    p = len(ranks)
    if p <= 1 or nbytes == 0:
        return CollectiveTiming("reduce", "binomial", nbytes, p, 0.0, coster.mode)
    root = ranks[0] if root is None else root
    ordered = [root] + [r for r in ranks if r != root]

    def bid(rank: int) -> int | None:
        return buffer_ids.get(rank) if buffer_ids else None

    steps: list[list[PairTransfer]] = []
    distance = 1
    g = len(ordered)
    while distance < g:
        transfers = []
        for i in range(0, g, 2 * distance):
            j = i + distance
            if j < g:
                transfers.append(
                    PairTransfer(
                        ordered[j], ordered[i], nbytes, bid(ordered[j]), bid(ordered[i])
                    )
                )
        steps.append(transfers)
        distance *= 2
    # Senders-to-receivers order must be reversed: leaves send first.
    total = coster.run_steps(list(reversed(steps)), reduce_after=True)
    return CollectiveTiming(
        "reduce", "binomial", nbytes, p, total, coster.mode, {"tree": total}
    )
