"""MPI_Bcast: binomial tree, with a hierarchical variant across nodes.

Horovod uses broadcast once at startup to synchronize initial model
parameters (paper §III-A step 2), so absolute performance matters less
than for allreduce; the binomial tree is what MVAPICH2 uses for the
relevant message range.
"""

from __future__ import annotations

from repro.mpi.collectives.base import CollectiveTiming, PairTransfer, StepCoster


def _binomial_order(group: list[int]) -> list[list[PairTransfer]]:
    """Root = group[0]; standard binomial dissemination."""
    g = len(group)
    steps: list[list[PairTransfer]] = []
    have = 1  # first `have` entries already hold the data
    while have < g:
        transfers = []
        for i in range(min(have, g - have)):
            transfers.append(PairTransfer(group[i], group[have + i], 0))
        steps.append(transfers)
        have *= 2
    return steps


def bcast_timing(
    coster: StepCoster,
    ranks: list[int],
    nbytes: int,
    *,
    root: int | None = None,
    buffer_ids: dict[int, int] | None = None,
) -> CollectiveTiming:
    """Time a broadcast of ``nbytes`` from ``root`` (default: first rank)."""
    p = len(ranks)
    if p <= 1 or nbytes == 0:
        return CollectiveTiming("bcast", "binomial", nbytes, p, 0.0, coster.mode)
    root = ranks[0] if root is None else root
    ordered = [root] + [r for r in ranks if r != root]

    def bid(rank: int) -> int | None:
        return buffer_ids.get(rank) if buffer_ids else None

    transport = coster.transport
    node_of = {r: transport.ranks[r].node_id for r in ranks}
    nodes = sorted(set(node_of.values()))
    segments: dict[str, float] = {}
    if len(nodes) == 1:
        steps = [
            [
                PairTransfer(t.src, t.dst, nbytes, bid(t.src), bid(t.dst))
                for t in step
            ]
            for step in _binomial_order(ordered)
        ]
        segments["tree"] = coster.run_steps(steps)
    else:
        # Hierarchical: binomial among node leaders, then within each node.
        by_node: dict[int, list[int]] = {}
        for r in ordered:
            by_node.setdefault(node_of[r], []).append(r)
        # leader of root's node is the root itself (ordered puts it first)
        leader_list = [group[0] for _, group in sorted(
            by_node.items(), key=lambda kv: (kv[0] != node_of[root], kv[0])
        )]
        inter = [
            [PairTransfer(t.src, t.dst, nbytes, bid(t.src), bid(t.dst)) for t in step]
            for step in _binomial_order(leader_list)
        ]
        segments["inter_tree"] = coster.run_steps(inter)
        intra_steps: list[list[PairTransfer]] = []
        per_node_schedules = [
            _binomial_order(group) for group in by_node.values() if len(group) > 1
        ]
        depth = max((len(s) for s in per_node_schedules), default=0)
        for d in range(depth):
            merged = []
            for schedule in per_node_schedules:
                if d < len(schedule):
                    merged.extend(
                        PairTransfer(t.src, t.dst, nbytes, bid(t.src), bid(t.dst))
                        for t in schedule[d]
                    )
            if merged:
                intra_steps.append(merged)
        segments["intra_tree"] = coster.run_steps(intra_steps)
    total = sum(segments.values())
    return CollectiveTiming(
        "bcast", "binomial", nbytes, p, total, coster.mode, segments
    )
