"""Simulated CUDA-aware MPI library (MVAPICH2-GDR-like).

Implements the communication stack the paper tunes:

* point-to-point eager/rendezvous protocols over the simulated fabric;
* CUDA-aware transport selection — NVLink IPC vs. host-staged copies
  intra-node, GPUDirect-RDMA inter-node (:mod:`repro.mpi.transports`);
* collective algorithms (ring, recursive doubling, Rabenseifner,
  two-level hierarchical) in both event-driven and analytic timing modes
  (:mod:`repro.mpi.collectives`);
* the tuning surface of MVAPICH2-GDR environment variables, including the
  paper's proposed ``MV2_VISIBLE_DEVICES`` (:mod:`repro.mpi.env`).
"""

from repro.mpi.datatypes import Datatype, ReduceOp
from repro.mpi.env import Mv2Config
from repro.mpi.process import RankContext, WorldSpec, build_world
from repro.mpi.transports import TransportKind, TransportModel
from repro.mpi.comm import Communicator, MpiWorld
from repro.mpi.p2p import ANY_SOURCE, ANY_TAG, P2PFabric, RecvStatus

__all__ = [
    "Datatype",
    "ReduceOp",
    "Mv2Config",
    "RankContext",
    "WorldSpec",
    "build_world",
    "TransportKind",
    "TransportModel",
    "Communicator",
    "MpiWorld",
    "P2PFabric",
    "RecvStatus",
    "ANY_SOURCE",
    "ANY_TAG",
]
