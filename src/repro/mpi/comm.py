"""Communicator facade: functional semantics + simulated timing.

The simulation runs all ranks lock-step in one Python process (bulk-
synchronous SPMD): a collective call receives *every* rank's buffer at
once, performs the real numpy reduction (functional mode), and obtains the
operation's simulated duration from the algorithm engines.

Profilers subscribe as observers — this is the seam ``hvprof`` hooks into.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.cuda.memory import DeviceAllocation
from repro.errors import MpiError
from repro.hardware.cluster import Cluster
from repro.mpi.collectives import (
    CollectiveTiming,
    ExecutionMode,
    StepCoster,
    allgather_timing,
    allreduce_timing,
    alltoall_timing,
    barrier_timing,
    bcast_timing,
    gather_timing,
    reduce_scatter_timing,
    reduce_timing,
    scatter_timing,
)
from repro.mpi.datatypes import Datatype, ReduceOp
from repro.mpi.process import RankContext, WorldSpec, build_world
from repro.mpi.transports import TransportModel


@dataclass
class GpuBuffer:
    """A (possibly virtual) device buffer participating in collectives.

    ``buffer_id`` is the registration-cache / IPC identity: Horovod's fusion
    buffer keeps one id across training steps, which is what makes the
    registration cache effective.  ``data`` is present in functional mode
    and ``None`` in performance mode.
    """

    nbytes: int
    dtype: Datatype = Datatype.FLOAT32
    data: Optional[np.ndarray] = None
    name: str = ""
    buffer_id: int = field(default_factory=lambda: next(DeviceAllocation._ids))

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise MpiError(f"buffer size must be >= 0, got {self.nbytes}")
        if self.data is not None:
            actual = self.data.size * self.data.itemsize
            if actual != self.nbytes:
                raise MpiError(
                    f"buffer {self.name!r}: data is {actual}B but nbytes={self.nbytes}"
                )

    @classmethod
    def from_array(cls, array: np.ndarray, name: str = "") -> "GpuBuffer":
        return cls(
            nbytes=array.size * array.itemsize,
            dtype=Datatype.from_numpy(array.dtype),
            data=array,
            name=name,
        )

    @classmethod
    def virtual(
        cls, nbytes: int, dtype: Datatype = Datatype.FLOAT32, name: str = ""
    ) -> "GpuBuffer":
        return cls(nbytes=nbytes, dtype=dtype, name=name)

    @property
    def elements(self) -> int:
        return self.nbytes // self.dtype.size


CollectiveObserver = Callable[[CollectiveTiming, str], None]


def apply_allreduce(
    buffers: Sequence[GpuBuffer], op: ReduceOp, *, average: bool = False
) -> None:
    """Functional-mode allreduce arithmetic (shared by MPI and NCCL backends)."""
    datas = [b.data for b in buffers]
    if all(d is None for d in datas):
        return
    if any(d is None for d in datas):
        raise MpiError("mixed functional/virtual buffers in one allreduce")
    if average and op is not ReduceOp.SUM:
        raise MpiError("average=True requires ReduceOp.SUM")
    reduced = op.reduce([d for d in datas])
    if average:
        reduced = reduced / len(datas)
    for d in datas:
        np.copyto(d, reduced.astype(d.dtype, copy=False))


def apply_bcast(buffers: Sequence[GpuBuffer], root_index: int) -> None:
    """Functional-mode bcast (shared by MPI and NCCL backends)."""
    root_data = buffers[root_index].data
    if root_data is None:
        return
    for i, b in enumerate(buffers):
        if i == root_index:
            continue
        if b.data is None:
            raise MpiError("mixed functional/virtual buffers in one bcast")
        np.copyto(b.data, root_data)


class MpiWorld:
    """Owns the ranks, transport model, and timing engine for one job."""

    backend_name = "mpi"

    def __init__(
        self,
        cluster: Cluster,
        spec: WorldSpec,
        *,
        mode: ExecutionMode = ExecutionMode.ANALYTIC,
        faults=None,
        retry=None,
    ):
        self.cluster = cluster
        self.spec = spec
        self.ranks: list[RankContext] = build_world(cluster, spec)
        self.transport = TransportModel(
            cluster, spec.config, self.ranks, faults=faults, retry=retry
        )
        self.coster = StepCoster(self.transport, mode)
        self.mode = mode
        self.faults = faults

    @property
    def size(self) -> int:
        return len(self.ranks)

    def communicator(self) -> "Communicator":
        return Communicator(self, [r.rank for r in self.ranks])

    def regcache_stats(self) -> dict[str, float]:
        return self.transport.regcache_stats()


class Communicator:
    """MPI communicator over a subset of world ranks (lock-step SPMD API)."""

    def __init__(self, world: MpiWorld, ranks: Sequence[int]):
        self.world = world
        self.ranks = list(ranks)
        self.observers: list[CollectiveObserver] = []
        self.total_comm_time = 0.0
        self.op_count = 0

    @property
    def size(self) -> int:
        return len(self.ranks)

    def add_observer(self, observer: CollectiveObserver) -> None:
        self.observers.append(observer)

    def restrict(self, ranks: Sequence[int]) -> "Communicator":
        """Sub-communicator on a subset of this communicator's ranks
        (elastic ring shrink after a rank failure).  Observers carry over."""
        missing = set(ranks) - set(self.ranks)
        if missing:
            raise MpiError(
                f"cannot restrict to ranks {sorted(missing)} not in "
                f"communicator {self.ranks}"
            )
        if not ranks:
            raise MpiError("cannot restrict a communicator to zero ranks")
        return self.reform(ranks)

    def reform(self, ranks: Sequence[int]) -> "Communicator":
        """Communicator over any subset of the *world's* ranks.

        Unlike :meth:`restrict`, the new membership need not be contained
        in this communicator's — an elastic re-grow re-admits a rank that
        was dropped earlier, as long as its process context still exists
        in the world.  Observers carry over either way.
        """
        world_ranks = {r.rank for r in self.world.ranks}
        unknown = set(ranks) - world_ranks
        if unknown:
            raise MpiError(
                f"cannot form a communicator on ranks {sorted(unknown)} "
                f"absent from the world {sorted(world_ranks)}"
            )
        if not ranks:
            raise MpiError("cannot form a communicator over zero ranks")
        sub = Communicator(self.world, list(ranks))
        sub.observers = list(self.observers)
        return sub

    def split_by_node(self) -> list["Communicator"]:
        """One sub-communicator per node (like MPI_Comm_split_type)."""
        by_node: dict[int, list[int]] = {}
        for r in self.ranks:
            by_node.setdefault(self.world.transport.ranks[r].node_id, []).append(r)
        return [Communicator(self.world, g) for _, g in sorted(by_node.items())]

    # -- internal ------------------------------------------------------------
    def _validate(self, buffers: Sequence[GpuBuffer]) -> int:
        if len(buffers) != self.size:
            raise MpiError(
                f"collective needs {self.size} buffers (one per rank), got {len(buffers)}"
            )
        sizes = {b.nbytes for b in buffers}
        if len(sizes) != 1:
            raise MpiError(f"mismatched buffer sizes across ranks: {sorted(sizes)}")
        return sizes.pop()

    def _buffer_ids(self, buffers: Sequence[GpuBuffer]) -> dict[int, int]:
        return {rank: buf.buffer_id for rank, buf in zip(self.ranks, buffers)}

    def _begin(self) -> None:
        self.world.transport.begin_collective()

    def _notify(self, timing: CollectiveTiming) -> None:
        self.total_comm_time += timing.time
        self.op_count += 1
        for observer in self.observers:
            observer(timing, self.world.backend_name)

    # -- collectives --------------------------------------------------------------
    def allreduce(
        self,
        buffers: Sequence[GpuBuffer],
        op: ReduceOp = ReduceOp.SUM,
        *,
        average: bool = False,
        algorithm: str | None = None,
    ) -> CollectiveTiming:
        """Element-wise reduce across ranks; result replaces each buffer's data."""
        nbytes = self._validate(buffers)
        self._begin()
        apply_allreduce(buffers, op, average=average)
        timing = allreduce_timing(
            self.world.coster,
            self.ranks,
            nbytes,
            buffer_ids=self._buffer_ids(buffers),
            algorithm=algorithm,
            dtype_bytes=buffers[0].dtype.size,
        )
        self._notify(timing)
        return timing

    def bcast(
        self, buffers: Sequence[GpuBuffer], *, root_index: int = 0
    ) -> CollectiveTiming:
        """Copy the root's data to all ranks."""
        nbytes = self._validate(buffers)
        self._begin()
        apply_bcast(buffers, root_index)
        timing = bcast_timing(
            self.world.coster,
            self.ranks,
            nbytes,
            root=self.ranks[root_index],
            buffer_ids=self._buffer_ids(buffers),
        )
        self._notify(timing)
        return timing

    def allgather(
        self, buffers: Sequence[GpuBuffer]
    ) -> tuple[list[np.ndarray] | None, CollectiveTiming]:
        """Gather every rank's data to all ranks."""
        nbytes = self._validate(buffers)
        self._begin()
        datas = [b.data for b in buffers]
        gathered = None
        if all(d is not None for d in datas):
            gathered = [d.copy() for d in datas]
        timing = allgather_timing(
            self.world.coster,
            self.ranks,
            nbytes,
            buffer_ids=self._buffer_ids(buffers),
            dtype_bytes=buffers[0].dtype.size,
        )
        self._notify(timing)
        return gathered, timing

    def reduce_scatter(
        self, buffers: Sequence[GpuBuffer], op: ReduceOp = ReduceOp.SUM
    ) -> tuple[list[np.ndarray] | None, CollectiveTiming]:
        """Reduce every rank's full vector, scatter one shard per rank.

        Each buffer holds the full input; rank i ends with the i-th
        ``nbytes / size`` shard of the element-wise reduction (the
        reduce-scatter phase of the ring allreduce run standalone).
        """
        nbytes = self._validate(buffers)
        if self.size > 1 and nbytes % self.size:
            raise MpiError(
                f"reduce_scatter needs nbytes divisible by {self.size} "
                f"ranks, got {nbytes}"
            )
        self._begin()
        datas = [b.data for b in buffers]
        scattered = None
        if all(d is not None for d in datas):
            reduced = op.reduce([d for d in datas])
            if self.size and reduced.size % self.size == 0:
                scattered = [c.copy() for c in np.split(reduced, self.size)]
        timing = reduce_scatter_timing(
            self.world.coster,
            self.ranks,
            nbytes // self.size if self.size else nbytes,
            buffer_ids=self._buffer_ids(buffers),
            dtype_bytes=buffers[0].dtype.size,
        )
        self._notify(timing)
        return scattered, timing

    def reduce(
        self,
        buffers: Sequence[GpuBuffer],
        op: ReduceOp = ReduceOp.SUM,
        *,
        root_index: int = 0,
    ) -> CollectiveTiming:
        nbytes = self._validate(buffers)
        self._begin()
        datas = [b.data for b in buffers]
        if all(d is not None for d in datas):
            reduced = op.reduce([d for d in datas])
            np.copyto(buffers[root_index].data, reduced)
        timing = reduce_timing(
            self.world.coster,
            self.ranks,
            nbytes,
            root=self.ranks[root_index],
            buffer_ids=self._buffer_ids(buffers),
        )
        self._notify(timing)
        return timing

    def barrier(self) -> CollectiveTiming:
        timing = barrier_timing(self.world.coster, self.ranks)
        self._notify(timing)
        return timing

    def gather(
        self, buffers: Sequence[GpuBuffer], *, root_index: int = 0
    ) -> tuple[list[np.ndarray] | None, CollectiveTiming]:
        """Collect every rank's buffer at the root."""
        nbytes = self._validate(buffers)
        self._begin()
        datas = [b.data for b in buffers]
        gathered = [d.copy() for d in datas] if all(
            d is not None for d in datas
        ) else None
        timing = gather_timing(
            self.world.coster, self.ranks, nbytes, root=self.ranks[root_index]
        )
        self._notify(timing)
        return gathered, timing

    def scatter(
        self,
        blocks: Sequence[np.ndarray] | None,
        buffers: Sequence[GpuBuffer],
        *,
        root_index: int = 0,
    ) -> CollectiveTiming:
        """Distribute the root's per-rank blocks into each rank's buffer."""
        nbytes = self._validate(buffers)
        self._begin()
        if blocks is not None:
            if len(blocks) != self.size:
                raise MpiError(
                    f"scatter needs {self.size} blocks, got {len(blocks)}"
                )
            for block, buf in zip(blocks, buffers):
                if buf.data is not None:
                    np.copyto(buf.data, block)
        timing = scatter_timing(
            self.world.coster, self.ranks, nbytes, root=self.ranks[root_index]
        )
        self._notify(timing)
        return timing

    def alltoall(self, nbytes_per_pair: int) -> CollectiveTiming:
        """Timing-only alltoall (no DL-training use; completeness of the
        MPI surface for protocol studies)."""
        self._begin()
        timing = alltoall_timing(self.world.coster, self.ranks, nbytes_per_pair)
        self._notify(timing)
        return timing
