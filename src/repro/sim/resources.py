"""Capacity-limited resources with FIFO queuing.

Links, PCIe lanes, DMA engines, and IB HCAs are modelled as resources: a
transfer process requests a slot, holds it for the transfer duration, then
releases it.  FIFO granting keeps the simulation deterministic and models
the serialization that creates congestion at scale.
"""

from __future__ import annotations

from collections import deque
from repro.errors import SimulationError
from repro.sim.engine import URGENT, Environment, Event


class ResourceRequest(Event):
    """Event that fires when the resource grants a slot to the requester."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env, name=f"request:{resource.name}")
        self.resource = resource


class Resource:
    """A server pool with ``capacity`` slots and a FIFO wait queue.

    Statistics (`total_wait_time`, `grant_count`, `peak_queue_len`) feed the
    contention reports used by the scaling analysis.
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: deque[tuple[ResourceRequest, float]] = deque()
        self.total_wait_time = 0.0
        self.grant_count = 0
        self.peak_queue_len = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def request(self) -> ResourceRequest:
        """Return an event that fires once a slot is available (FIFO)."""
        req = ResourceRequest(self)
        if self._in_use < self.capacity and not self._queue:
            self._grant(req, waited=0.0)
        else:
            self._queue.append((req, self.env.now))
            self.peak_queue_len = max(self.peak_queue_len, len(self._queue))
        return req

    def try_acquire(self) -> bool:
        """Claim a slot immediately if one is free and nobody is queued.

        The uncontended fast path: no request event is created, so a
        transfer holding only free resources costs zero heap traffic.
        Contention semantics are identical to :meth:`request` — the slot
        is genuinely held, so later requesters queue behind it — and the
        grant is counted in the statistics.  Pair with :meth:`release`.
        """
        if self._in_use < self.capacity and not self._queue:
            self._in_use += 1
            self.grant_count += 1
            return True
        return False

    def release(self) -> None:
        """Return a slot; grants the oldest queued request at URGENT priority."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        self._in_use -= 1
        if self._queue:
            req, enqueued_at = self._queue.popleft()
            self._grant(req, waited=self.env.now - enqueued_at)

    def _grant(self, req: ResourceRequest, waited: float) -> None:
        self._in_use += 1
        self.total_wait_time += waited
        self.grant_count += 1
        req.succeed(self, priority=URGENT)

    def acquire(self):
        """Process helper: ``yield from resource.acquire()``."""
        yield self.request()

    def mean_wait_time(self) -> float:
        if self.grant_count == 0:
            return 0.0
        return self.total_wait_time / self.grant_count

    def __repr__(self) -> str:
        return (
            f"<Resource {self.name!r} {self._in_use}/{self.capacity} busy, "
            f"{len(self._queue)} queued>"
        )


def try_acquire_all(resources) -> bool:
    """All-or-nothing immediate claim over several resources.

    Rolls back already-claimed slots if any resource is busy, so a failed
    attempt leaves no state behind.  Used by the uncontended-link fast
    path to claim a whole multi-hop route in one shot.
    """
    held = []
    for res in resources:
        if res.try_acquire():
            held.append(res)
        else:
            for r in held:
                r.release()
            return False
    return True

