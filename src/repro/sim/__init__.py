"""Discrete-event simulation core.

A small, deterministic, generator-based event engine in the style of SimPy.
Processes are Python generators that ``yield`` events (timeouts, other
processes, resource requests, store gets); the :class:`Environment` drives
them from a binary-heap event queue.

The engine is the substrate under every timed component in this package:
link transfers, MPI protocol state machines, Horovod cycles, and GPU kernel
executions all run as processes on one shared clock.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.fastpath import (
    EngineMode,
    FastPathSession,
    MutationClock,
    coerce_engine_mode,
    enable_fastpath,
    fastpath_stats,
)
from repro.sim.resources import Resource, ResourceRequest
from repro.sim.queues import Store

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Resource",
    "ResourceRequest",
    "Store",
    "EngineMode",
    "FastPathSession",
    "MutationClock",
    "coerce_engine_mode",
    "enable_fastpath",
    "fastpath_stats",
]
