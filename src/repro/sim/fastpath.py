"""Calibrated trace/replay fast path for the analytic collective engine.

The scaling studies spend nearly all of their wall clock re-walking
collective step schedules: a 512-rank hierarchical allreduce re-costs the
same ~2p distinct point-to-point transfers across hundreds of BSP steps,
and every cost call re-derives the same transport selection, path cost,
protocol overhead, and registration-cache outcome.  Echo-style replay
applies directly: *simulate each distinct transfer faithfully once, then
replay its recorded timing and side effects for every recurrence* — which
collapses the schedule walk from O(steps x ranks) full cost-model
evaluations to O(distinct transfers) evaluations plus O(steps x ranks)
dictionary lookups.

Correctness contract (the bit-identity guarantee the equivalence suite
pins):

* A transfer is memoized only when costing it mutated **no** structural
  protocol state — no registration-cache insert, evict, re-register,
  poison-repair, or flush, and no new CUDA IPC pair.  Warm-up transfers
  (first touch of a buffer, first IPC open) therefore always run exact;
  the steady-state recurrences replay.
* Every structural mutation bumps a :class:`MutationClock` shared by the
  transport and all of its registration caches.  A memo entry records the
  clock at capture time and is dead the instant the clock moves — a cache
  eviction anywhere, an HCA flush, or an explicit :meth:`invalidate`
  (fault event, regrow, elastic reform, selection-table install)
  conservatively re-records everything.
* With a fault injector attached, ``path_cost`` becomes a function of
  simulated time (link degradation windows), so each entry additionally
  pins ``env.now`` at capture and only replays at the same timestamp.
* Replay applies the *exact* side effects of the recorded path:
  call-scoped hit/miss statistics (``RegistrationCache._txn`` semantics),
  LRU ``move_to_end`` touches, eager/rendezvous counters, per-kind
  transport stats, and ordered staging-time charges — so a run that mixes
  replayed and exact transfers leaves behind byte-identical protocol
  state, and comm-record accounting still adds up.
* Replayed totals are precomputed floats using the same operation
  association as the exact code; call-transaction-conditional branches
  (the disabled-registration-cache receiver acquire, whose per-call cost
  depends on whether the buffer was already advertised this call) are
  captured per branch, with a record-time bitwise cross-check against the
  observed breakdown — a mismatch skips memoization rather than risking
  drift.

When replay cannot prove identity — an impure call, a clock or timestamp
mismatch, a failed cross-check — the transfer silently falls back to the
exact cost model.  ``repro.sim.fastpath`` never approximates; it only
skips recomputing what is provably unchanged.
"""

from __future__ import annotations

import enum
import math
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.collectives.base import PairTransfer, StepCoster
    from repro.mpi.transports import TransportModel


class EngineMode(enum.Enum):
    """How the analytic engine executes collective schedules."""

    #: walk every schedule step through the full transport cost model
    EXACT = "exact"
    #: record each distinct transfer once, replay recurrences (bit-identical)
    FAST = "fast"


def coerce_engine_mode(mode: "EngineMode | str | None") -> EngineMode:
    """Accept the enum, its string value, or ``None`` (= exact)."""
    if mode is None:
        return EngineMode.EXACT
    if isinstance(mode, EngineMode):
        return mode
    try:
        return EngineMode(str(mode))
    except ValueError:
        raise ConfigError(
            f"engine mode must be 'exact' or 'fast', got {mode!r}"
        ) from None


class MutationClock:
    """Monotone counter of structural protocol-state mutations.

    Shared by one transport and all of its registration caches.  Pure
    counter updates (hits, byte stats, staging seconds) do *not* bump it;
    any structural change (cache insert/evict/poison/flush, new IPC pair,
    fault perturbation, elastic reform) does, killing every memo entry
    recorded under the old value.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def bump(self) -> None:
        self.value += 1


# Effect flavors a memo entry can carry (which side effects replay applies).
_F_NONE = 0  # SELF / CUDA_IPC: stats only
_F_STAGED = 1  # SMP_EAGER / HOST_STAGED: stats + staging charge
_F_EAGER = 2  # IB_EAGER: stats + eager_sends counter
_F_RNDV = 3  # GDR_RDMA: rndv counter + src acquire + dst acquire
_F_RNDV_STAGED = 4  # STAGED_INTER: rndv counter + src acquire + staging


class TransferEntry:
    """Recorded outcome of one pure transfer costing.

    ``t_plain``/``t_reduce`` mirror ``CostBreakdown.total`` (+ optional
    reduction term) with the float association the exact path uses; the
    ``t_new_*`` variants cover the disabled-registration-cache receiver
    branch, where the first advertisement of a buffer within an MPI call
    pays register + deregister and later chunks ride the transaction.
    """

    __slots__ = (
        "clock",
        "now",
        "kind",
        "nbytes",
        "flavor",
        "t_plain",
        "t_reduce",
        "t_new_plain",
        "t_new_reduce",
        "staged_src",
        "staged_dst",
        "staged_half",
        "ib",
        "src_cache",
        "src_buf",
        "dst_cache",
        "dst_buf",
    )

    def __init__(self, clock: int, now: float | None, kind, nbytes: int):
        self.clock = clock
        self.now = now
        self.kind = kind
        self.nbytes = nbytes
        self.flavor = _F_NONE
        self.t_plain = 0.0
        self.t_reduce = 0.0
        self.t_new_plain = 0.0
        self.t_new_reduce = 0.0
        self.staged_src = 0
        self.staged_dst = 0
        self.staged_half = 0.0
        self.ib = None
        self.src_cache = None
        self.src_buf = 0
        self.dst_cache = None
        self.dst_buf = 0


class FastPathSession:
    """Per-world replay state: memo, clock, and run statistics.

    One session is attached to a
    :class:`~repro.mpi.collectives.base.StepCoster` (``coster.fastpath``);
    ``StepCoster.run_steps`` routes analytic schedule walks through
    :meth:`run_steps` when a session is present.
    """

    #: memo safety valve — never-recurring keys (fresh per-step buffer ids
    #: of unfused tensors) would otherwise grow the table without bound
    MAX_ENTRIES = 1 << 18

    def __init__(self, transport: "TransportModel"):
        from repro.mpi.transports import TransportKind

        self.transport = transport
        self.clock = MutationClock()
        self.memo: dict[tuple, TransferEntry] = {}
        self.replayed_transfers = 0
        self.exact_transfers = 0
        self.invalidations = 0
        self._kinds = TransportKind
        self._staged_kinds = (
            TransportKind.HOST_STAGED,
            TransportKind.SMP_EAGER,
            TransportKind.STAGED_INTER,
        )
        self._time_varying = transport.cluster.fault_injector is not None
        self._attach(transport)

    def _attach(self, transport: "TransportModel") -> None:
        transport.mutation_clock = self.clock
        for ib in transport._ib.values():
            ib.reg_cache.clock = self.clock

    # -- invalidation ------------------------------------------------------
    def invalidate(self) -> None:
        """Kill every memo entry (fault event, regrow, table install...).

        O(1): entries stay resident but their recorded clock no longer
        matches, so each next occurrence re-records under the new value.
        """
        self.clock.bump()
        self.invalidations += 1

    def adopt(self, transport: "TransportModel") -> None:
        """Re-wire the session onto a rebuilt transport (elastic restart)."""
        self.transport = transport
        self._time_varying = transport.cluster.fault_injector is not None
        self._attach(transport)
        self.invalidate()

    def stats(self) -> dict[str, int]:
        return {
            "replayed_transfers": self.replayed_transfers,
            "exact_transfers": self.exact_transfers,
            "memo_entries": len(self.memo),
            "invalidations": self.invalidations,
            "clock": self.clock.value,
        }

    # -- recording ---------------------------------------------------------
    def _record(
        self,
        coster: "StepCoster",
        t: "PairTransfer",
        bd,
        dst_in_txn: bool,
        now: float | None,
    ) -> TransferEntry | None:
        """Build a memo entry from a pure exact call.

        Returns ``None`` when the observed breakdown cannot be reproduced
        branch-exactly (bitwise cross-check failure) — the transfer then
        simply keeps running exact.
        """
        K = self._kinds
        tr = self.transport
        kind = bd.kind
        entry = TransferEntry(self.clock.value, now, kind, t.nbytes)
        reduce_s = coster.reduce_time_for(kind, t.nbytes, t.dtype_bytes)
        entry.t_plain = bd.total
        entry.t_reduce = bd.total + reduce_s

        if kind is K.SELF or kind is K.CUDA_IPC:
            # stats only (IPC pair already open, or no protocol state at all)
            return entry
        if kind is K.SMP_EAGER or kind is K.HOST_STAGED:
            entry.flavor = _F_STAGED
            entry.staged_src = t.src
            entry.staged_dst = t.dst
            entry.staged_half = bd.staging / 2
            return entry
        if kind is K.IB_EAGER:
            entry.flavor = _F_EAGER
            entry.ib = tr._ib[tr.ranks[t.src].node_id]
            return entry
        if kind is not K.GDR_RDMA and kind is not K.STAGED_INTER:
            return None  # pragma: no cover - enum is exhaustive

        # Rendezvous paths: reconstruct the sender-side protocol term with
        # the exact association rendezvous_overhead() uses, then cross-check
        # bitwise against the observed breakdown.
        a = tr.ranks[t.src]
        extent = t.buffer_extent if t.buffer_extent is not None else t.nbytes
        ib = tr._ib[a.node_id]
        src_cache = ib.reg_cache
        if src_cache.enabled:
            # pure call => the source acquire was a transaction-scoped hit
            rndv = ib.costs.rndv_handshake_s + 0.0
        else:
            cm = src_cache.cost
            rndv = ib.costs.rndv_handshake_s + (
                cm.register_time(t.nbytes) + cm.deregister_time(t.nbytes)
            )
        entry.ib = ib
        entry.src_cache = src_cache
        entry.src_buf = t.src_buffer if t.src_buffer is not None else -t.src - 1
        base = bd.wire + bd.staging

        if kind is K.STAGED_INTER:
            if base + rndv != bd.total:
                return None
            entry.flavor = _F_RNDV_STAGED
            entry.staged_src = t.src
            entry.staged_dst = t.dst
            entry.staged_half = bd.staging / 2
            return entry

        # GDR_RDMA: the receiver's buffer is advertised through its own
        # HCA's cache; protocol = rndv + acquire_dst.
        entry.flavor = _F_RNDV
        b = tr.ranks[t.dst]
        dst_cache = tr._ib[b.node_id].reg_cache
        entry.dst_cache = dst_cache
        entry.dst_buf = t.dst_buffer if t.dst_buffer is not None else -t.dst - 1
        if dst_cache.enabled:
            # pure call => the receiver acquire hit (0.0 cost either way;
            # only the txn-scoped statistics differ, which replay applies)
            if base + (rndv + 0.0) != bd.total:
                return None
            return entry
        cm = dst_cache.cost
        c_dst = cm.register_time(extent) + cm.deregister_time(extent)
        t_plain = base + (rndv + 0.0)
        t_new = base + (rndv + c_dst)
        if bd.total != (t_plain if dst_in_txn else t_new):
            return None
        entry.t_plain = t_plain
        entry.t_reduce = t_plain + reduce_s
        entry.t_new_plain = t_new
        entry.t_new_reduce = t_new + reduce_s
        return entry

    # -- replay ------------------------------------------------------------
    def _replay(self, entry: TransferEntry, reduce_after: bool) -> float:
        """Apply a recorded transfer's side effects; return its total."""
        tr = self.transport
        stats = tr.stats
        kind = entry.kind
        stats.bytes_moved[kind] += entry.nbytes
        stats.transfers[kind] += 1
        flavor = entry.flavor
        if flavor == _F_NONE:
            return entry.t_reduce if reduce_after else entry.t_plain
        if flavor == _F_STAGED:
            staged = tr.staged_seconds
            staged[entry.staged_src] += entry.staged_half
            staged[entry.staged_dst] += entry.staged_half
            return entry.t_reduce if reduce_after else entry.t_plain
        if flavor == _F_EAGER:
            entry.ib.eager_sends += 1
            return entry.t_reduce if reduce_after else entry.t_plain
        # rendezvous flavors
        entry.ib.rndv_sends += 1
        src_cache = entry.src_cache
        if src_cache.enabled:
            # transaction-scoped hit: statistics + LRU touch, zero cost
            txn = src_cache._txn
            buf = entry.src_buf
            if buf not in txn:
                txn.add(buf)
                src_cache.hits += 1
            src_cache._entries.move_to_end(buf)
        else:
            # disabled-cache rendezvous charges each chunk unconditionally
            src_cache.misses += 1
        if flavor == _F_RNDV_STAGED:
            staged = tr.staged_seconds
            staged[entry.staged_src] += entry.staged_half
            staged[entry.staged_dst] += entry.staged_half
            return entry.t_reduce if reduce_after else entry.t_plain
        # GDR: receiver-side advertisement through its own cache
        dst_cache = entry.dst_cache
        txn = dst_cache._txn
        buf = entry.dst_buf
        if dst_cache.enabled:
            if buf not in txn:
                txn.add(buf)
                dst_cache.hits += 1
            dst_cache._entries.move_to_end(buf)
            return entry.t_reduce if reduce_after else entry.t_plain
        if buf in txn:
            return entry.t_reduce if reduce_after else entry.t_plain
        txn.add(buf)
        dst_cache.misses += 1
        return entry.t_new_reduce if reduce_after else entry.t_new_plain

    # -- schedule walking --------------------------------------------------
    def step_time(
        self,
        coster: "StepCoster",
        transfers: list,
        *,
        reduce_after: bool = False,
    ) -> float:
        """Makespan of one BSP step, replaying memoized transfers.

        Mirrors ``StepCoster.step_time_analytic`` operation-for-operation;
        only the source of each per-transfer total differs (memo replay vs
        full costing).
        """
        if not transfers:
            return 0.0
        tr = self.transport
        memo = self.memo
        clock = self.clock
        now = tr.cluster.env.now if self._time_varying else None
        staged_by_node: dict[int, list[float]] = {}
        other_max = 0.0
        engines = tr.cluster.spec.node.staging_engines
        staged_kinds = self._staged_kinds
        corrupting = coster.corruption_active()
        for t in transfers:
            key = (
                t.src,
                t.dst,
                t.nbytes,
                t.src_buffer,
                t.dst_buffer,
                t.buffer_extent,
                t.dtype_bytes,
            )
            entry = memo.get(key)
            if (
                entry is not None
                and entry.clock == clock.value
                and entry.now == now
            ):
                total = self._replay(entry, reduce_after)
                kind = entry.kind
                self.replayed_transfers += 1
                if corrupting:
                    # same rolls, same association order as the exact walk:
                    # replay covers the clean transfer, the surcharge adds
                    # CRC-detected retransmits on top
                    total += coster.corruption_surcharge(
                        t.src, t.dst, t.nbytes, entry.t_plain
                    )
            else:
                # Snapshot the receiver-side transaction state *before* the
                # call: with the registration cache disabled, the observed
                # acquire cost depends on it, and _record must know which
                # branch it is looking at.
                dst_in_txn = False
                a_node = tr.ranks[t.src].node_id
                b_node = tr.ranks[t.dst].node_id
                if a_node != b_node:
                    dcache = tr._ib[b_node].reg_cache
                    if not dcache.enabled:
                        dbuf = (
                            t.dst_buffer
                            if t.dst_buffer is not None
                            else -t.dst - 1
                        )
                        dst_in_txn = dbuf in dcache._txn
                before = clock.value
                bd = tr.cost(
                    t.src,
                    t.dst,
                    t.nbytes,
                    src_buffer=t.src_buffer,
                    dst_buffer=t.dst_buffer,
                    buffer_extent=t.buffer_extent,
                )
                kind = bd.kind
                total = bd.total
                if reduce_after:
                    total += coster.reduce_time_for(kind, t.nbytes, t.dtype_bytes)
                if corrupting:
                    total += coster.corruption_surcharge(
                        t.src, t.dst, t.nbytes, bd.total
                    )
                self.exact_transfers += 1
                if clock.value == before:
                    if len(memo) >= self.MAX_ENTRIES:
                        memo.clear()
                    new = self._record(coster, t, bd, dst_in_txn, now)
                    if new is not None:
                        memo[key] = new
            if kind in staged_kinds:
                node = tr.ranks[t.src].node_id
                staged_by_node.setdefault(node, []).append(total)
            else:
                other_max = max(other_max, total)
        staged_max = 0.0
        for times in staged_by_node.values():
            waves = math.ceil(len(times) / engines)
            staged_max = max(staged_max, waves * max(times))
        return max(other_max, staged_max)

    def run_steps(
        self,
        coster: "StepCoster",
        steps: list,
        *,
        reduce_after: bool = False,
    ) -> float:
        """Analytic schedule walk with per-transfer replay (same summation
        order as the exact path: sequential over steps)."""
        if getattr(steps, "is_ring_schedule", False) and not coster.corruption_active():
            # the ring closed form collapses warm steps without walking
            # their transfers — under an active wire-corruption window
            # every transfer must roll the corruption stream, so fall
            # through to the per-step walk
            return self._ring_run(coster, steps, reduce_after)
        total = 0.0
        for step in steps:
            total += self.step_time(coster, step, reduce_after=reduce_after)
        return total

    # -- warm-state synthesis ----------------------------------------------
    def _synth(
        self,
        coster: "StepCoster",
        src: int,
        dst: int,
        nbytes: int,
        src_buffer: int | None,
        dst_buffer: int | None,
        buffer_extent: int | None,
        now: float | None,
        dtype_bytes: int,
    ) -> TransferEntry | None:
        """Build a memo entry *without* running the transfer, from warm state.

        Mirrors ``TransportModel.cost`` branch-for-branch with the same
        float associations, but refuses (returns ``None``) whenever the
        exact call would mutate structural protocol state — a cold IPC
        pair, a cold/undersized/poisoned registration — because those
        warm-up transitions must run exact.  A synthesized entry is
        therefore exactly what ``_record`` would capture from the next
        pure exact call, obtained one call early; the ring closed form
        uses it to cover chunk-size variants the walked steps have not
        organically recorded yet.
        """
        K = self._kinds
        tr = self.transport
        kind = tr.select(src, dst, nbytes)
        entry = TransferEntry(self.clock.value, now, kind, nbytes)
        a = tr.ranks[src]
        b = tr.ranks[dst]
        extent = buffer_extent if buffer_extent is not None else nbytes
        reduce_s = coster.reduce_time_for(kind, nbytes, dtype_bytes)

        if kind is K.SELF:
            entry.t_plain = 0.0
            entry.t_reduce = 0.0 + reduce_s
            return entry
        if kind is K.SMP_EAGER:
            staging = 2 * nbytes / tr.cluster.spec.node.pageable_copy_bandwidth
            entry.flavor = _F_STAGED
            entry.staged_src = src
            entry.staged_dst = dst
            entry.staged_half = staging / 2
            entry.t_plain = (0.0 + staging) + 2.0e-6
            entry.t_reduce = entry.t_plain + reduce_s
            return entry
        if kind is K.HOST_STAGED:
            staging = tr._staged_time(a, b, nbytes)
            entry.flavor = _F_STAGED
            entry.staged_src = src
            entry.staged_dst = dst
            entry.staged_half = staging / 2
            entry.t_plain = (0.0 + staging) + 2.5e-6
            entry.t_reduce = entry.t_plain + reduce_s
            return entry
        if kind is K.CUDA_IPC:
            if (min(src, dst), max(src, dst)) not in tr._ipc_pairs:
                return None  # first transfer opens the pair: must run exact
            protocol = 0.0 + 3.0e-6
            path = tr.cluster.path_cost(a.device_ref, b.device_ref, nbytes)
            wire = max(path, nbytes / tr.config.cuda_ipc_bandwidth)
            entry.t_plain = (wire + 0.0) + protocol
            entry.t_reduce = entry.t_plain + reduce_s
            return entry
        if kind is K.IB_EAGER:
            ib = tr._ib[a.node_id]
            protocol = ib.costs.eager_overhead_s + nbytes / ib.costs.eager_copy_bandwidth
            staging = nbytes / tr.cluster.spec.node.pageable_copy_bandwidth
            wire = tr.cluster.path_cost(a.device_ref, b.device_ref, nbytes)
            entry.flavor = _F_EAGER
            entry.ib = ib
            entry.t_plain = (wire + staging) + protocol
            entry.t_reduce = entry.t_plain + reduce_s
            return entry

        # rendezvous kinds: GDR_RDMA / STAGED_INTER
        ib = tr._ib[a.node_id]
        src_cache = ib.reg_cache
        sbuf = src_buffer if src_buffer is not None else -src - 1
        if src_cache.enabled:
            reg = src_cache._entries.get(sbuf)
            if reg is None or reg < extent or sbuf in src_cache._poisoned:
                return None  # cold/stale registration: the acquire mutates
            rndv = ib.costs.rndv_handshake_s + 0.0
        else:
            cm = src_cache.cost
            rndv = ib.costs.rndv_handshake_s + (
                cm.register_time(nbytes) + cm.deregister_time(nbytes)
            )
        entry.ib = ib
        entry.src_cache = src_cache
        entry.src_buf = sbuf

        if kind is K.STAGED_INTER:
            staging = 2 * nbytes / tr.cluster.spec.node.pageable_copy_bandwidth
            wire = tr.cluster.path_cost(tr._cpu_of(a), tr._cpu_of(b), nbytes)
            entry.flavor = _F_RNDV_STAGED
            entry.staged_src = src
            entry.staged_dst = dst
            entry.staged_half = staging / 2
            entry.t_plain = (wire + staging) + rndv
            entry.t_reduce = entry.t_plain + reduce_s
            return entry

        # GDR_RDMA
        entry.flavor = _F_RNDV
        wire = tr.cluster.path_cost(a.device_ref, b.device_ref, nbytes)
        dst_cache = tr._ib[b.node_id].reg_cache
        dbuf = dst_buffer if dst_buffer is not None else -dst - 1
        entry.dst_cache = dst_cache
        entry.dst_buf = dbuf
        base = wire + 0.0
        if dst_cache.enabled:
            reg = dst_cache._entries.get(dbuf)
            if reg is None or reg < extent or dbuf in dst_cache._poisoned:
                return None
            entry.t_plain = base + (rndv + 0.0)
            entry.t_reduce = entry.t_plain + reduce_s
            return entry
        cm = dst_cache.cost
        c_dst = cm.register_time(extent) + cm.deregister_time(extent)
        entry.t_plain = base + (rndv + 0.0)
        entry.t_reduce = entry.t_plain + reduce_s
        entry.t_new_plain = base + (rndv + c_dst)
        entry.t_new_reduce = entry.t_new_plain + reduce_s
        return entry

    # -- ring closed form --------------------------------------------------
    #: below this ring size the per-transfer walk is already cheap and the
    #: closed form's staged-contention preconditions rarely hold
    _RING_MIN_RANKS = 8

    def _ring_run(self, coster: "StepCoster", sched, reduce_after: bool) -> float:
        """Walk a ring phase, collapsing its tail into the closed form.

        Walks steps per-transfer only while protocol state is still
        mutating (cold caches, first-in-call advertisements); once every
        distinct transfer is provably warm the remaining steps reduce to
        a vectorized max over the ~2p recorded totals plus aggregate
        side-effect application.
        """
        n_steps = len(sched)
        if n_steps <= 0:
            return 0.0
        total = 0.0
        for s in range(n_steps):
            done = self._ring_tail(coster, sched, s, reduce_after, total)
            if done is not None:
                return done
            total += self.step_time(coster, sched.step(s), reduce_after=reduce_after)
        return total

    def _ring_entries(
        self, coster: "StepCoster", sched, chunk: int, now: float | None
    ) -> list[TransferEntry] | None:
        """Valid memo entries for every ring pair at one chunk size."""
        ranks = sched.ranks
        p = len(ranks)
        extent = sched.extent
        bids = sched.buffer_ids
        dtype_bytes = sched.dtype_bytes
        memo = self.memo
        clock_value = self.clock.value
        out = []
        for i in range(p):
            src = ranks[i]
            dst = ranks[(i + 1) % p]
            sbuf = bids.get(src) if bids else None
            dbuf = bids.get(dst) if bids else None
            key = (src, dst, chunk, sbuf, dbuf, extent, dtype_bytes)
            entry = memo.get(key)
            if entry is None or entry.clock != clock_value or entry.now != now:
                entry = self._synth(coster, src, dst, chunk, sbuf, dbuf, extent,
                                    now, dtype_bytes)
                if entry is None:
                    return None
                if len(memo) >= self.MAX_ENTRIES:
                    memo.clear()
                memo[key] = entry
            out.append(entry)
        return out

    def _ring_tail(
        self,
        coster: "StepCoster",
        sched,
        s0: int,
        reduce_after: bool,
        total: float,
    ) -> float | None:
        """Closed-form remainder of a ring phase from step ``s0`` on.

        Returns the phase total (continuing the caller's running ``total``
        with the same accumulation order as the exact walk), or ``None``
        when the preconditions do not hold yet and step ``s0`` must be
        walked per-transfer.
        """
        ranks = sched.ranks
        p = len(ranks)
        if p < self._RING_MIN_RANKS:
            return None
        tr = self.transport
        now = tr.cluster.env.now if self._time_varying else None
        rem = sched.rem
        small = self._ring_entries(coster, sched, sched.chunk_small, now)
        if small is None:
            return None
        big = self._ring_entries(coster, sched, sched.chunk_big, now) if rem else small
        if big is None:
            return None

        staged_pairs = []
        nodes_distinct = len({tr.ranks[r].node_id for r in ranks}) == p
        for i in range(p):
            e_s, e_b = small[i], big[i]
            if e_s.kind is not e_b.kind or e_s.flavor != e_b.flavor:
                return None  # chunk classes straddle a transport threshold
            if e_s.dst_cache is not None and not e_s.dst_cache.enabled:
                # the receiver's first advertisement this call pays
                # register+deregister and changes the step's makespan; the
                # closed form only covers the post-advertisement regime
                if e_s.dst_buf not in e_s.dst_cache._txn:
                    return None
            if e_s.flavor == _F_STAGED or e_s.flavor == _F_RNDV_STAGED:
                staged_pairs.append(i)
        shared_staging = staged_pairs and not nodes_distinct
        if shared_staging and rem:
            # staged transfers sharing a node serialize in engine waves,
            # and the rotating big/small chunk classes reshuffle each
            # step's wave membership — only the uniform ring (allgather:
            # rem == 0, identical transfer set every step) has a
            # step-invariant wave structure the closed form can price
            return None

        n_rem = (p - 1) - s0
        t_small = np.fromiter(
            ((e.t_reduce if reduce_after else e.t_plain) for e in small),
            dtype=np.float64,
            count=p,
        )
        if rem:
            t_big = np.fromiter(
                ((e.t_reduce if reduce_after else e.t_plain) for e in big),
                dtype=np.float64,
                count=p,
            )
            idx = np.arange(p)
            s_arr = np.arange(s0, p - 1)
            is_big = ((idx[None, :] - s_arr[:, None]) % p) < rem
            makespans = np.where(is_big, t_big[None, :], t_small[None, :]).max(
                axis=1
            ).tolist()
            cnt_big = is_big.sum(axis=0).tolist()
        elif shared_staging:
            # uniform ring with node-shared staging: reproduce the exact
            # walk's contention model (per-src-node engine waves) once —
            # every collapsed step prices identically
            engines = tr.cluster.spec.node.staging_engines
            staged_set = set(staged_pairs)
            by_node: dict[int, list[float]] = {}
            other_max = 0.0
            for i in range(p):
                t = float(t_small[i])
                if i in staged_set:
                    by_node.setdefault(
                        tr.ranks[ranks[i]].node_id, []).append(t)
                else:
                    other_max = max(other_max, t)
            staged_max = 0.0
            for times in by_node.values():
                waves = math.ceil(len(times) / engines)
                staged_max = max(staged_max, waves * max(times))
            makespans = [max(other_max, staged_max)] * n_rem
            cnt_big = [0] * p
        else:
            makespans = [float(t_small.max())] * n_rem
            cnt_big = [0] * p
        for m in makespans:
            total += m

        # aggregate side effects of the collapsed steps -------------------
        stats = tr.stats
        bytes_moved = stats.bytes_moved
        transfer_counts = stats.transfers
        for i in range(p):
            cb = cnt_big[i]
            for entry, cnt in ((big[i], cb), (small[i], n_rem - cb)):
                if not cnt:
                    continue
                bytes_moved[entry.kind] += entry.nbytes * cnt
                transfer_counts[entry.kind] += cnt
                flavor = entry.flavor
                if flavor == _F_EAGER:
                    entry.ib.eager_sends += cnt
                elif flavor == _F_RNDV or flavor == _F_RNDV_STAGED:
                    entry.ib.rndv_sends += cnt
                    if not entry.src_cache.enabled:
                        # disabled-cache rendezvous charges each chunk
                        entry.src_cache.misses += cnt
        # transaction-scoped statistics: one hit per (call, buffer) on its
        # first acquire; the chunk classes share buffers, so one pass over
        # the small row covers every (cache, buffer) the phase touches
        seen: set[tuple[int, int]] = set()
        for entry in small:
            for cache, buf in (
                (entry.src_cache, entry.src_buf),
                (entry.dst_cache, entry.dst_buf),
            ):
                if cache is None or not cache.enabled:
                    continue
                k = (id(cache), buf)
                if k in seen:
                    continue
                seen.add(k)
                if buf not in cache._txn:
                    cache._txn.add(buf)
                    cache.hits += 1
        # LRU recency: the exact walk's final ordering is the last step's
        # acquire sequence (src then dst, pairs ascending); one pass
        # reproduces it — intermediate touches leave no other trace
        for entry in small:
            cache = entry.src_cache
            if cache is not None and cache.enabled:
                cache._entries.move_to_end(entry.src_buf)
            cache = entry.dst_cache
            if cache is not None and cache.enabled:
                cache._entries.move_to_end(entry.dst_buf)
        # staging charges accumulate per rank in walk order; replay the
        # per-rank add sequence literally (float += order is part of the
        # bit-identity contract)
        if staged_pairs:
            staged = tr.staged_seconds
            for s in range(s0, p - 1):
                for i in staged_pairs:
                    entry = big[i] if (i - s) % p < rem else small[i]
                    half = entry.staged_half
                    staged[entry.staged_src] += half
                    staged[entry.staged_dst] += half
        self.replayed_transfers += n_rem * p
        return total


def enable_fastpath(world) -> FastPathSession | None:
    """Attach a replay session to a backend world's analytic coster.

    Returns the session (idempotent — an already-attached session is
    returned as-is), or ``None`` when the backend exposes no
    :class:`~repro.mpi.collectives.base.StepCoster` (closed-form backends
    cost collectives without schedule walks and need no fast path) or the
    coster runs in event mode (replay is only valid for analytic walks).
    """
    from repro.mpi.collectives.base import ExecutionMode

    coster = getattr(world, "coster", None)
    transport = getattr(world, "transport", None)
    if coster is None or transport is None:
        return None
    if coster.mode is not ExecutionMode.ANALYTIC:
        return None
    existing = getattr(coster, "fastpath", None)
    if existing is not None:
        return existing
    session = FastPathSession(transport)
    coster.fastpath = session
    return session


def fastpath_stats(world) -> dict[str, int] | None:
    """The replay statistics of a world's attached session, if any.

    ``None`` when no session is attached — a closed-form backend, event
    mode, or an exact-mode run.  Diagnostics only: the counters depend on
    memo warmth, so reports that must be byte-identical across cold/warm
    runs (scaling points, planner output) never embed them.
    """
    session = getattr(getattr(world, "coster", None), "fastpath", None)
    if session is None:
        return None
    return session.stats()
