"""FIFO message stores for producer/consumer processes.

The MPI point-to-point layer uses one :class:`Store` per (receiver,
matching-key) to implement message matching with correct arrival ordering.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.engine import URGENT, Environment, Event


class Store:
    """Unbounded FIFO channel: ``put`` never blocks, ``get`` blocks if empty."""

    def __init__(self, env: Environment, name: str = "store"):
        self.env = env
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self.put_count = 0
        self.get_count = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest waiting getter immediately."""
        self.put_count += 1
        if self._getters:
            getter = self._getters.popleft()
            self.get_count += 1
            getter.succeed(item, priority=URGENT)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event yielding the next item (fires when available)."""
        event = Event(self.env, name=f"get:{self.name}")
        if self._items:
            self.get_count += 1
            event.succeed(self._items.popleft(), priority=URGENT)
        else:
            self._getters.append(event)
        return event

    def peek_all(self) -> list[Any]:
        """Non-destructive snapshot of queued items (for debugging/tests)."""
        return list(self._items)
