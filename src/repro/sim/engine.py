"""Generator-based discrete-event simulation engine.

Design notes
------------
* Events are scheduled on a binary heap keyed ``(time, priority, seq)``;
  ``seq`` is a monotone counter making execution order fully deterministic.
* A :class:`Process` wraps a generator.  Each ``yield`` must produce an
  :class:`Event`; the process resumes when that event fires, receiving the
  event's value as the result of the ``yield`` expression.
* Exceptions set on an event (via :meth:`Event.fail`) are re-raised inside
  every waiting process, so protocol code can use ordinary ``try/except``.
* ``Environment.run()`` with no bound drains the queue and then checks for
  suspended processes, raising :class:`~repro.errors.DeadlockError` so that
  lost-message bugs in MPI protocol code fail loudly in tests.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import DeadlockError, SimulationError

# Event priorities: URGENT fires before NORMAL at the same timestamp. Used so
# resource releases propagate before new requests at identical times.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence processes can wait on.

    Lifecycle: *pending* -> *triggered* (scheduled on the heap) ->
    *processed* (callbacks ran).  ``succeed``/``fail`` may be called exactly
    once.
    """

    __slots__ = (
        "env",
        "callbacks",
        "_value",
        "_ok",
        "_scheduled",
        "_processed",
        "_defused",
        "name",
    )

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._processed = False
        # True once some consumer (process, condition, run(until=...)) will
        # observe a failure; failed events nobody observes crash the run.
        self._defused = False
        self.name = name

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError(f"event {self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, *, priority: int = NORMAL) -> "Event":
        if self._ok is not None:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, priority)
        return self

    def fail(self, exception: BaseException, *, priority: int = NORMAL) -> "Event":
        if self._ok is not None:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, priority)
        return self

    def __repr__(self) -> str:
        state = "pending" if self._ok is None else ("ok" if self._ok else "failed")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(env, name=f"timeout({delay:g})")
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay=delay)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """Wraps a generator; the process *is* an event that fires on return.

    The event value is the generator's ``return`` value; an uncaught
    exception inside the generator fails the event (and propagates to the
    environment if nobody is waiting).
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick-start at the current time via an initialization event.
        init = Event(env, name=f"init:{self.name}")
        init.callbacks.append(self._resume)
        init._ok = True
        env._schedule(init, URGENT)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self!r}")
        if self._waiting_on is not None:
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        kick = Event(self.env, name=f"interrupt:{self.name}")
        kick.callbacks.append(lambda ev: self._step_throw(Interrupt(cause)))
        kick._ok = True
        self.env._schedule(kick, URGENT)

    # -- stepping ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._ok:
            self._step_send(event._value)
        else:
            self._step_throw(event._value)

    def _step_send(self, value: Any) -> None:
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process body failed
            self._fail_from_body(exc)
            return
        self._wait_on(target)

    def _step_throw(self, exc: BaseException) -> None:
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as body_exc:  # noqa: BLE001
            self._fail_from_body(body_exc)
            return
        self._wait_on(target)

    def _fail_from_body(self, exc: BaseException) -> None:
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise exc
        self.fail(exc)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._step_throw(
                SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
            )
            return
        target._defused = True
        if target._processed:
            # Already fired: resume immediately (same timestamp).
            kick = Event(self.env, name=f"requeue:{self.name}")
            kick._ok = target._ok
            kick._value = target._value
            kick.callbacks.append(self._resume)
            self.env._schedule(kick, URGENT)
            return
        self._waiting_on = target
        target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different environments")
            ev._defused = True

    def _collect(self) -> list[Any]:
        return [ev._value for ev in self.events if ev._ok is not None]


class AllOf(_Condition):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ("_remaining",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events)
        self._remaining = 0
        for ev in self.events:
            if ev._processed:
                if not ev._ok:
                    self.fail(ev._value)
                    return
                continue
            self._remaining += 1
            ev.callbacks.append(self._on_child)
        if self._remaining == 0 and self._ok is None:
            self.succeed(self._collect())

    def _on_child(self, ev: Event) -> None:
        if self._ok is not None:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when the first child event fires; value is that event's value."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events)
        if not self.events:
            raise SimulationError("AnyOf requires at least one event")
        for ev in self.events:
            if ev._processed:
                if ev._ok:
                    self.succeed(ev._value)
                else:
                    self.fail(ev._value)
                return
        for ev in self.events:
            ev.callbacks.append(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._ok is not None:
            return
        if ev._ok:
            self.succeed(ev._value)
        else:
            self.fail(ev._value)


class Environment:
    """Owns the clock and the event heap.

    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(1.5)
    ...     return env.now
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> p.value
    1.5
    """

    __slots__ = ("_now", "_heap", "_seq", "_active_processes", "events_processed")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_processes = 0
        # Monotone count of events popped off the heap; the perf harness
        # reports simulated events/sec from it.
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    # -- factories -------------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        proc = Process(self, generator, name=name)
        self._active_processes += 1
        proc.callbacks.append(self._on_process_end)
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def _on_process_end(self, ev: Event) -> None:
        self._active_processes -= 1

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, priority: int, *, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError(f"event {event!r} scheduled twice")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    # -- execution ---------------------------------------------------------
    def step(self) -> None:
        """Process a single event from the heap."""
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self._now - 1e-15:
            raise SimulationError("event scheduled in the past")
        if when > self._now:
            self._now = when
        self.events_processed += 1
        event._processed = True
        callbacks = event.callbacks
        if callbacks:
            # swap before running: appends during processing must not fire
            # (waiters check _processed and requeue themselves instead)
            event.callbacks = []
            for callback in callbacks:
                callback(event)
        if event._ok is False and not event._defused:
            # A failure nobody observes would vanish silently; surface it.
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the given time, event, or queue exhaustion.

        With ``until=None``, drains the queue and raises
        :class:`DeadlockError` if any process is still suspended (a lost
        wakeup — e.g. a receive with no matching send).
        """
        heap = self._heap
        step = self.step
        if isinstance(until, Event):
            stop_event = until
            stop_event._defused = True
            while not stop_event._processed:
                if not heap:
                    raise DeadlockError(
                        f"event queue drained before {stop_event!r} fired"
                    )
                step()
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(f"cannot run to the past ({horizon} < {self._now})")
            while heap and heap[0][0] <= horizon:
                step()
            self._now = horizon
            return None
        while heap:
            step()
        if self._active_processes > 0:
            raise DeadlockError(
                f"{self._active_processes} process(es) still waiting after the "
                "event queue drained (lost wakeup / unmatched communication)"
            )
        return None
