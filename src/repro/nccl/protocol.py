"""NCCL protocol constants.

NCCL pipelines fixed-size chunks through its rings/trees with two wire
protocols (LL for latency, Simple for bandwidth); we model the envelope:
a per-step latency, a protocol bandwidth efficiency, and a chunk size that
sets the pipeline-fill cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import KIB
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class NcclProtocol:
    """Tuning envelope of an NCCL build (defaults calibrated to NCCL 2.8)."""

    intra_step_latency_s: float = 3.5e-6
    inter_step_latency_s: float = 8.5e-6
    # Fraction of raw link bandwidth the Simple protocol sustains.
    nvlink_efficiency: float = 0.82
    ib_efficiency: float = 0.88
    chunk_bytes: int = 512 * KIB
    # Below this size the LL protocol's latency dominates; modelled as a
    # fixed floor per operation.
    ll_threshold: int = 64 * KIB
    ll_op_latency_s: float = 25e-6
    # Tree algorithm becomes profitable above this node count (NCCL 2.8
    # enables double binary trees at scale).
    tree_node_threshold: int = 8

    def __post_init__(self) -> None:
        check_positive("chunk_bytes", self.chunk_bytes)
        for name in ("nvlink_efficiency", "ib_efficiency"):
            value = getattr(self, name)
            if not 0 < value <= 1:
                raise ValueError(f"{name} must be in (0,1], got {value}")


DEFAULT_PROTOCOL = NcclProtocol()
