"""NCCL-like collective backend.

The comparison backend of the paper's Figs. 10–13.  NCCL manages its own
CUDA IPC handles and peer discovery, so — unlike the default MPI path — it
is *not* crippled by per-rank ``CUDA_VISIBLE_DEVICES`` (each process only
needs its own device visible; the paper's §III-C notes NCCL performs IPC
transfers regardless once CUDA >= 10.1).  That asymmetry is exactly why
default NCCL outscales default MVAPICH2-GDR in Fig. 10.
"""

from repro.nccl.protocol import NcclProtocol
from repro.nccl.rings import build_ring, ring_bandwidth
from repro.nccl.communicator import NcclCommunicator, NcclWorld

__all__ = [
    "NcclProtocol",
    "build_ring",
    "ring_bandwidth",
    "NcclCommunicator",
    "NcclWorld",
]
