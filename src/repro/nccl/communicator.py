"""NCCL communicator: ring/tree allreduce timing + functional semantics.

Presents the same lock-step SPMD interface as
:class:`repro.mpi.comm.Communicator` so Horovod can swap backends
(`HOROVOD_GPU_ALLREDUCE=NCCL` vs MPI in the paper's runs).

Fault injection is symmetric with the MPI backend since the ``repro.comm``
refactor: a :class:`~repro.faults.FaultInjector` handed to
:class:`NcclWorld` degrades the cost envelope — link faults scale the
NVLink/IB hop classes (bandwidth and latency), and message faults charge
their delay (plus one deterministic chunk retransmission per drop) against
the inter-node hops of the ring.  The injector is consulted at the
communicator's accumulated comm-stream time, which is the envelope's
analogue of the MPI transport's per-transfer clock.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import NcclError
from repro.hardware.cluster import Cluster
from repro.hardware.links import LinkKind
from repro.mpi.collectives.base import CollectiveTiming, ExecutionMode
from repro.mpi.comm import (
    CollectiveObserver,
    GpuBuffer,
    apply_allreduce,
    apply_bcast,
)
from repro.mpi.datatypes import ReduceOp
from repro.nccl.protocol import DEFAULT_PROTOCOL, NcclProtocol
from repro.nccl.rings import build_ring, ring_bandwidth, ring_hop_latency


class NcclWorld:
    """NCCL job state: cluster + protocol; visibility policies do not apply."""

    backend_name = "nccl"

    def __init__(
        self,
        cluster: Cluster,
        num_ranks: int,
        protocol: NcclProtocol = DEFAULT_PROTOCOL,
        *,
        faults=None,
    ):
        if num_ranks < 1:
            raise NcclError(f"num_ranks must be >= 1, got {num_ranks}")
        if num_ranks > cluster.num_gpus:
            raise NcclError(
                f"{num_ranks} ranks > {cluster.num_gpus} GPUs in cluster"
            )
        self.cluster = cluster
        self.protocol = protocol
        self.num_ranks = num_ranks
        self.faults = faults

    @property
    def size(self) -> int:
        return self.num_ranks

    def communicator(self) -> "NcclCommunicator":
        return NcclCommunicator(self, list(range(self.num_ranks)))


class NcclCommunicator:
    """Ring/tree-based collectives with NCCL cost envelope."""

    def __init__(self, world: NcclWorld, ranks: Sequence[int]):
        self.world = world
        self.ranks = list(ranks)
        self.observers: list[CollectiveObserver] = []
        self.total_comm_time = 0.0
        self.op_count = 0

    @property
    def size(self) -> int:
        return len(self.ranks)

    def add_observer(self, observer: CollectiveObserver) -> None:
        self.observers.append(observer)

    def restrict(self, ranks: Sequence[int]) -> "NcclCommunicator":
        """Sub-communicator on surviving ranks (elastic ring shrink)."""
        missing = set(ranks) - set(self.ranks)
        if missing:
            raise NcclError(
                f"cannot restrict to ranks {sorted(missing)} not in "
                f"communicator {self.ranks}"
            )
        if not ranks:
            raise NcclError("cannot restrict a communicator to zero ranks")
        sub = NcclCommunicator(self.world, list(ranks))
        sub.observers = list(self.observers)
        return sub

    def reform(self, ranks: Sequence[int]) -> "NcclCommunicator":
        """Communicator over any subset of the world's ranks (elastic
        shrink or re-grow).  Observers carry over."""
        unknown = {r for r in ranks if not 0 <= r < self.world.num_ranks}
        if unknown:
            raise NcclError(
                f"cannot form a communicator on ranks {sorted(unknown)} "
                f"outside the {self.world.num_ranks}-rank world"
            )
        if not ranks:
            raise NcclError("cannot form a communicator over zero ranks")
        sub = NcclCommunicator(self.world, list(ranks))
        sub.observers = list(self.observers)
        return sub

    # -- timing models ----------------------------------------------------------
    def _node_count(self) -> int:
        gpn = self.world.cluster.gpus_per_node
        return len({r // gpn for r in self.ranks})

    def _now(self) -> float:
        """The envelope's clock: accumulated time on the comm stream."""
        return self.total_comm_time

    def _link_fault(self, kind: LinkKind) -> tuple[float, float]:
        faults = self.world.faults
        if faults is None:
            return 1.0, 0.0
        return faults.link_state(kind, self._now())

    def _message_delay(self, nbytes: int) -> float:
        """Injected message-fault penalty over the ring's inter-node hops.

        Mirrors the MPI transport's per-message verdicts at envelope
        granularity: each inter-node (src, dst) hop is consulted once per
        collective; delays accumulate, and a drop costs one deterministic
        retransmission of a pipeline chunk.  A *severed* hop (partition /
        switch outage) can never succeed: the sender waits out the whole
        retry ladder, then the collective raises
        :class:`~repro.errors.MpiTimeoutError` — surfaced, not a hang.
        """
        faults = self.world.faults
        if faults is None or len(self.ranks) <= 1 or nbytes == 0:
            return 0.0
        cluster = self.world.cluster
        proto = self.world.protocol
        ring = build_ring(cluster, self.ranks)
        p = len(ring)
        delay = 0.0
        for i, rank in enumerate(ring):
            nxt = ring[(i + 1) % p]
            if cluster.gpu_ref(rank).node == cluster.gpu_ref(nxt).node:
                continue
            verdict = faults.message_verdict(rank, nxt, self._now())
            delay += verdict.delay_s
            if verdict.severed:
                from repro.errors import MpiTimeoutError
                from repro.faults.plan import RetryPolicy

                retry = RetryPolicy()
                faults.record(
                    "msg-timeout", self._now(), src=rank, dst=nxt,
                    detail=f"{nbytes}B severed ring hop",
                )
                raise MpiTimeoutError(
                    f"ring hop {rank}->{nxt} ({nbytes}B) path severed "
                    f"(partition/switch outage); retry budget "
                    f"({retry.max_retries}) exhausted after "
                    f"{retry.ladder_time():.6f}s"
                )
            if verdict.drop:
                ib_bw = cluster.spec.ib.bandwidth * proto.ib_efficiency
                delay += proto.inter_step_latency_s + proto.chunk_bytes / ib_bw
        return delay

    def _ring_allreduce_time(self, nbytes: int) -> float:
        p = len(self.ranks)
        proto = self.world.protocol
        if p <= 1 or nbytes == 0:
            return 0.0
        faults = self.world.faults
        if nbytes <= proto.ll_threshold:
            _, extra = self._link_fault(
                LinkKind.IB if self._node_count() > 1 else LinkKind.NVLINK_P2P
            )
            return (
                proto.ll_op_latency_s
                + math.log2(max(p, 2)) * (proto.intra_step_latency_s + extra)
                + self._message_delay(nbytes)
            )
        bw = ring_bandwidth(
            self.world.cluster, self.ranks, proto, faults=faults, now=self._now()
        )
        hop = ring_hop_latency(
            self.world.cluster, self.ranks, proto, faults=faults, now=self._now()
        )
        steps = 2 * (p - 1)
        # chunk pipelining: latency per pipeline stage + bandwidth term
        fill = min(nbytes / p, proto.chunk_bytes) / bw if bw != float("inf") else 0.0
        return (
            steps * (hop + fill)
            + 2 * nbytes * (p - 1) / (p * bw)
            + self._message_delay(nbytes)
        )

    def _tree_allreduce_time(self, nbytes: int) -> float:
        """Double-binary-tree estimate: depth in nodes, full bandwidth."""
        p = len(self.ranks)
        proto = self.world.protocol
        nodes = self._node_count()
        if p <= 1 or nbytes == 0:
            return 0.0
        cluster = self.world.cluster
        ib_factor, ib_extra = self._link_fault(LinkKind.IB)
        nv_factor, nv_extra = self._link_fault(LinkKind.NVLINK_P2P)
        ib_bw = cluster.spec.ib.bandwidth * proto.ib_efficiency * max(ib_factor, 1e-12)
        nv_bw = (
            cluster.spec.node.nvlink_gpu_gpu.bandwidth
            * proto.nvlink_efficiency
            * max(nv_factor, 1e-12)
        )
        depth = math.ceil(math.log2(max(nodes, 2))) + math.ceil(
            math.log2(max(p // max(nodes, 1), 2))
        )
        step_extra = ib_extra if nodes > 1 else nv_extra
        latency = 2 * depth * (proto.inter_step_latency_s + step_extra)
        # reduce + broadcast sweep: 2n over the bottleneck (IB when multi-node)
        bw = ib_bw if nodes > 1 else nv_bw
        return (
            latency
            + 2 * nbytes / bw
            + 2 * depth * (proto.chunk_bytes / bw)
            + self._message_delay(nbytes)
        )

    def _allreduce_time(
        self, nbytes: int, algorithm: str | None = None
    ) -> tuple[float, str]:
        """Auto-select ring vs tree, or honor an explicit override (the
        seam the ``repro.comm`` selection tables route through)."""
        if algorithm in ("ring", "nccl-ring"):
            return self._ring_allreduce_time(nbytes), "nccl-ring"
        if algorithm in ("tree", "nccl-tree"):
            return self._tree_allreduce_time(nbytes), "nccl-tree"
        if algorithm is not None:
            raise NcclError(
                f"unknown NCCL allreduce algorithm {algorithm!r}; "
                f"use 'nccl-ring' or 'nccl-tree'"
            )
        ring = self._ring_allreduce_time(nbytes)
        if self._node_count() >= self.world.protocol.tree_node_threshold:
            tree = self._tree_allreduce_time(nbytes)
            if tree < ring:
                return tree, "nccl-tree"
        return ring, "nccl-ring"

    def _allgather_time(self, nbytes_per_rank: int) -> float:
        """Ring allgather: each rank's block circulates p-1 hops.

        Same envelope family as the ring allreduce, with a single
        bandwidth sweep (``n(p-1)/B`` per rank) and no reduction term —
        sparse gradient payloads use this path.
        """
        p = len(self.ranks)
        proto = self.world.protocol
        if p <= 1 or nbytes_per_rank == 0:
            return 0.0
        faults = self.world.faults
        bw = ring_bandwidth(
            self.world.cluster, self.ranks, proto, faults=faults, now=self._now()
        )
        hop = ring_hop_latency(
            self.world.cluster, self.ranks, proto, faults=faults, now=self._now()
        )
        steps = p - 1
        fill = (
            min(nbytes_per_rank, proto.chunk_bytes) / bw
            if bw != float("inf")
            else 0.0
        )
        return (
            steps * (hop + fill)
            + nbytes_per_rank * (p - 1) / bw
            + self._message_delay(nbytes_per_rank)
        )

    def _bcast_time(self, nbytes: int) -> float:
        p = len(self.ranks)
        proto = self.world.protocol
        if p <= 1 or nbytes == 0:
            return 0.0
        faults = self.world.faults
        bw = ring_bandwidth(
            self.world.cluster, self.ranks, proto, faults=faults, now=self._now()
        )
        hop = ring_hop_latency(
            self.world.cluster, self.ranks, proto, faults=faults, now=self._now()
        )
        # pipelined ring broadcast: n/B + (p-1) pipeline stages
        return (
            nbytes / bw
            + (p - 1) * (hop + proto.chunk_bytes / bw)
            + self._message_delay(nbytes)
        )

    # -- collective API ------------------------------------------------------------
    def _validate(self, buffers: Sequence[GpuBuffer]) -> int:
        if len(buffers) != self.size:
            raise NcclError(
                f"collective needs {self.size} buffers, got {len(buffers)}"
            )
        sizes = {b.nbytes for b in buffers}
        if len(sizes) != 1:
            raise NcclError(f"mismatched buffer sizes: {sorted(sizes)}")
        return sizes.pop()

    def _notify(self, timing: CollectiveTiming) -> None:
        self.total_comm_time += timing.time
        self.op_count += 1
        for observer in self.observers:
            observer(timing, self.world.backend_name)

    def allreduce(
        self,
        buffers: Sequence[GpuBuffer],
        op: ReduceOp = ReduceOp.SUM,
        *,
        average: bool = False,
        algorithm: str | None = None,
    ) -> CollectiveTiming:
        nbytes = self._validate(buffers)
        apply_allreduce(buffers, op, average=average)
        time, algo = self._allreduce_time(nbytes, algorithm)
        timing = CollectiveTiming(
            "allreduce", algo, nbytes, self.size, time, ExecutionMode.ANALYTIC
        )
        self._notify(timing)
        return timing

    def allgather(self, buffers: Sequence[GpuBuffer]):
        """Gather every rank's data to all ranks (ring envelope)."""
        nbytes = self._validate(buffers)
        datas = [b.data for b in buffers]
        gathered = None
        if all(d is not None for d in datas):
            gathered = [d.copy() for d in datas]
        timing = CollectiveTiming(
            "allgather",
            "nccl-ring",
            nbytes,
            self.size,
            self._allgather_time(nbytes),
            ExecutionMode.ANALYTIC,
        )
        self._notify(timing)
        return gathered, timing

    def bcast(
        self, buffers: Sequence[GpuBuffer], *, root_index: int = 0
    ) -> CollectiveTiming:
        nbytes = self._validate(buffers)
        apply_bcast(buffers, root_index)
        timing = CollectiveTiming(
            "bcast",
            "nccl-ring",
            nbytes,
            self.size,
            self._bcast_time(nbytes),
            ExecutionMode.ANALYTIC,
        )
        self._notify(timing)
        return timing

    def barrier(self) -> CollectiveTiming:
        p = len(self.ranks)
        proto = self.world.protocol
        time = (
            math.ceil(math.log2(max(p, 2))) * proto.inter_step_latency_s
            if p > 1
            else 0.0
        )
        timing = CollectiveTiming(
            "barrier", "nccl", 0, p, time, ExecutionMode.ANALYTIC
        )
        self._notify(timing)
        return timing
