"""NCCL ring construction over the simulated topology.

NCCL searches the PCI/NVLink graph for rings; on Lassen-like nodes the
natural ring follows local ordinals within each node and hops to the next
node once (GPU ids are node-major, so the identity order is already the
topology-aware ring).
"""

from __future__ import annotations

from repro.errors import NcclError
from repro.hardware.cluster import Cluster
from repro.hardware.links import LinkKind


def build_ring(cluster: Cluster, ranks: list[int]) -> list[int]:
    """Return the rank order of the (single logical) ring.

    Ranks must be node-contiguous (NCCL requires communicator-wide device
    discovery; our launcher allocates ranks node-major).
    """
    if not ranks:
        raise NcclError("cannot build a ring over zero ranks")
    return sorted(ranks)


def _hop_fault(faults, inter_node: bool, now: float) -> tuple[float, float]:
    """(bandwidth factor, extra latency) for one ring hop's link class.

    The NCCL cost envelope has no per-message transport, so injected link
    faults degrade the hop's class — IB for inter-node hops, the NVLink
    peer class within a node (the envelope's intra-hop approximation).
    """
    if faults is None:
        return 1.0, 0.0
    kind = LinkKind.IB if inter_node else LinkKind.NVLINK_P2P
    return faults.link_state(kind, now)


def ring_bandwidth(
    cluster: Cluster,
    ranks: list[int],
    protocol,
    *,
    channels: int = 1,
    faults=None,
    now: float = 0.0,
) -> float:
    """Steady-state per-rank ring bandwidth (bytes/s).

    The ring's throughput is bounded by its slowest hop: NVLink hops within
    a node, one IB hop in and out of each node when the ring spans nodes.

    ``channels`` models NCCL's parallel rings: intra-node hops aggregate
    additional NVLink bricks (up to 3 on Lassen), while the inter-node hop
    shares the single HCA and gains nothing — which is why multi-channel
    NCCL helps single-node jobs but not IB-bound multi-node rings.

    ``faults``/``now`` thread the :class:`~repro.faults.FaultInjector`
    into the envelope: active link faults scale the affected hop class'
    bandwidth before the slowest-hop reduction.
    """
    if channels < 1:
        raise NcclError(f"channels must be >= 1, got {channels}")
    ring = build_ring(cluster, ranks)
    p = len(ring)
    if p == 1:
        return float("inf")
    nvlink_channels = min(channels, 3)  # NVLink2 bricks per GPU pair class
    slowest = float("inf")
    for i, rank in enumerate(ring):
        nxt = ring[(i + 1) % p]
        a, b = cluster.gpu_ref(rank), cluster.gpu_ref(nxt)
        raw = cluster.path_bandwidth(a, b)
        inter = a.node != b.node
        if inter:
            hop = raw * protocol.ib_efficiency
        else:
            hop = raw * protocol.nvlink_efficiency * nvlink_channels
        factor, _ = _hop_fault(faults, inter, now)
        if factor > 0:
            hop *= factor
        slowest = min(slowest, hop)
    return slowest


def ring_hop_latency(
    cluster: Cluster, ranks: list[int], protocol, *, faults=None, now: float = 0.0
) -> float:
    """Worst per-step latency across ring hops (fault-degraded when active)."""
    ring = build_ring(cluster, ranks)
    p = len(ring)
    if p == 1:
        return 0.0
    worst = 0.0
    for i, rank in enumerate(ring):
        nxt = ring[(i + 1) % p]
        a, b = cluster.gpu_ref(rank), cluster.gpu_ref(nxt)
        inter = a.node != b.node
        lat = (
            protocol.inter_step_latency_s
            if inter
            else protocol.intra_step_latency_s
        )
        _, extra = _hop_fault(faults, inter, now)
        worst = max(worst, lat + extra)
    return worst
