"""Chaos campaigns: correlated faults, machine-checked invariants.

PR 1-5 gave every layer deterministic fault hooks; PR 8 composes them
into *campaigns*: the cross product of named fault scenarios (whole-node
death, leaf-switch outage, network partition, wire/checkpoint
corruption, serving failover), recovery policies, and seeds, where every
cell runs under both engine modes and is judged against machine-checked
invariants — ledger conservation, CRC-paired corruption, checksummed
checkpoint recovery, topological blast radii, and fast/exact
bit-identity.

* :mod:`repro.chaos.scenarios` — the named, seeded fault families;
* :mod:`repro.chaos.invariants` — the per-cell predicates;
* :mod:`repro.chaos.campaign` — the cached, parallel campaign runner
  and its canonical digest.

Exposed via ``python -m repro chaos``; see ``docs/faults.md``.
"""

from repro.chaos.campaign import (
    POLICY_NAMES,
    CampaignConfig,
    CampaignReport,
    run_campaign,
)
from repro.chaos.invariants import InvariantResult
from repro.chaos.scenarios import (
    SCENARIOS,
    SERVE_SCENARIOS,
    TRAIN_SCENARIOS,
    ChaosScenario,
    build_plan,
)

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "ChaosScenario",
    "InvariantResult",
    "POLICY_NAMES",
    "SCENARIOS",
    "SERVE_SCENARIOS",
    "TRAIN_SCENARIOS",
    "build_plan",
    "run_campaign",
]
