"""The chaos campaign runner: scenario x policy x seed, invariant-checked.

A campaign is the cross product of named chaos scenarios
(:mod:`repro.chaos.scenarios`), recovery policies, and seeds.  Every
training cell runs **twice** — once per engine mode — through the cached
parallel sweep machinery (:func:`repro.perf.parallel.run_point_jobs`),
serving cells through :func:`repro.serve.sweep.run_serve_jobs`; cells are
independent, so a campaign parallelizes exactly like a scaling sweep and
re-runs hit the content-addressed result cache.

Each cell is then judged against the machine-checked invariants of
:mod:`repro.chaos.invariants`, and the whole campaign collapses to one
canonical digest over every cell's full payload and verdicts.  The
digest is the campaign's reproducibility contract: ``--jobs 1``,
``--jobs 8``, and a warm-cache re-run must produce the identical digest,
and any change to fault, recovery, or timing semantics moves it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.invariants import InvariantResult, check_serve_cell, check_train_cell
from repro.chaos.scenarios import (
    SCENARIOS,
    build_plan,
    scenario_by_name,
)
from repro.errors import ConfigError
from repro.faults.domains import Topology

#: policy vocabulary of a campaign: the two canonical recovery responses
POLICY_NAMES = ("restart", "shrink")


def _policy_for(name: str):
    from repro.resilience.policy import RESTART_FROM_CHECKPOINT, SHRINK_CONTINUE

    try:
        return {
            "restart": RESTART_FROM_CHECKPOINT,
            "shrink": SHRINK_CONTINUE,
        }[name]
    except KeyError:
        raise ConfigError(
            f"unknown recovery policy {name!r}; "
            f"choose from {', '.join(POLICY_NAMES)}"
        ) from None


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign's cross product and per-cell workload."""

    scenarios: tuple[str, ...] = tuple(sorted(SCENARIOS))
    policies: tuple[str, ...] = POLICY_NAMES
    seeds: int = 3
    num_gpus: int = 16
    #: registered training scenario the study cells run under
    train_scenario: str = "MPI-Opt"
    measure_steps: int = 40
    serve_duration_s: float = 60.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "policies", tuple(self.policies))
        for s in self.scenarios:
            scenario_by_name(s)  # raises ConfigError on unknown names
        for p in self.policies:
            _policy_for(p)
        if self.seeds < 1:
            raise ConfigError(f"seeds must be >= 1, got {self.seeds}")
        if self.num_gpus < 2:
            raise ConfigError(
                f"a chaos campaign needs a multi-rank world, got "
                f"{self.num_gpus} GPU(s)"
            )

    def cells(self) -> list[tuple[str, str, int]]:
        """Deterministic cell order: scenario-major, then policy, then seed."""
        return [
            (s, p, seed)
            for s in self.scenarios
            for p in self.policies
            for seed in range(self.seeds)
        ]


@dataclass
class CampaignReport:
    """Every cell's payloads and verdicts plus the campaign digest."""

    config: dict
    rows: list[dict] = field(default_factory=list)
    digest: str = ""

    @property
    def ok(self) -> bool:
        return all(
            inv["ok"] for row in self.rows for inv in row["invariants"]
        )

    def failures(self) -> list[dict]:
        """Red cells: (scenario, policy, seed, invariant, detail)."""
        out = []
        for row in self.rows:
            for inv in row["invariants"]:
                if not inv["ok"]:
                    out.append(
                        {
                            "scenario": row["scenario"],
                            "policy": row["policy"],
                            "seed": row["seed"],
                            "invariant": inv["name"],
                            "detail": inv["detail"],
                        }
                    )
        return out

    def to_payload(self) -> dict:
        return {
            "kind": "chaos-campaign",
            "config": self.config,
            "rows": self.rows,
            "digest": self.digest,
            "ok": self.ok,
        }

    def lines(self) -> list[str]:
        """Human-readable cell table for the CLI."""
        out = []
        for row in self.rows:
            verdict = (
                "ok"
                if all(inv["ok"] for inv in row["invariants"])
                else "FAIL " + ", ".join(
                    inv["name"] for inv in row["invariants"] if not inv["ok"]
                )
            )
            if row["kind"] == "train":
                r = row["exact"]["resilience"]
                stats = (
                    f"goodput {r['goodput']:.3f}  "
                    f"world {r['final_world_size']:3d}  "
                    f"restarts {r['restarts']}"
                )
            else:
                s = row["exact"]["summary"]
                stats = (
                    f"goodput {s['goodput_rps']:7.2f} req/s  "
                    f"shed {s['shed']:4d}  detections {s['detections']}"
                )
            out.append(
                f"{row['scenario']:>16s}  {row['policy']:>7s}  "
                f"seed {row['seed']}  {stats}  [{verdict}]"
            )
        return out


def _train_rows(config: CampaignConfig, cells, *, jobs: int, cache):
    """Run training cells (both engine modes) through the point sweep."""
    from dataclasses import replace

    from repro.core.study import StudyConfig, point_payload
    from repro.hardware.specs import LASSEN
    from repro.perf.parallel import PointJob, active_table_payloads, run_point_jobs

    topology = Topology.from_spec(
        LASSEN, config.num_gpus // LASSEN.node.gpus_per_node
    )
    # zero jitter: steady-state extrapolation keeps cells cheap, and the
    # fast/exact identity check compares exactly reproducible payloads
    base = StudyConfig(measure_steps=config.measure_steps, jitter_sigma=0.0)
    tables = active_table_payloads()
    point_jobs = []
    for scenario_name, policy_name, seed in cells:
        plan = build_plan(scenario_name, seed, topology)
        policy = _policy_for(policy_name)
        for mode in ("exact", "fast"):
            point_jobs.append(
                PointJob(
                    config.train_scenario,
                    config.num_gpus,
                    replace(base, engine_mode=mode),
                    fault_plan=plan,
                    recovery=policy,
                    comm_tables=tables,
                )
            )
    points = run_point_jobs(point_jobs, workers=jobs, cache=cache)
    rows = []
    for i, (scenario_name, policy_name, seed) in enumerate(cells):
        exact = point_payload(points[2 * i])
        fast = point_payload(points[2 * i + 1])
        scenario = scenario_by_name(scenario_name)
        expected = (
            scenario.expected_survivors(topology)
            if scenario.expected_survivors is not None
            else None
        )
        invariants = check_train_cell(exact, fast, expected)
        rows.append(
            _row(scenario_name, policy_name, seed, "train", exact, fast, invariants)
        )
    return rows


def _serve_scenario(chaos_name: str):
    """The ServeScenario one serving chaos cell runs (workload-aware)."""
    from repro.serve.batcher import BatchingConfig
    from repro.serve.simulator import ServeScenario
    from repro.serve.workload import VIDEO_MIX, WorkloadConfig

    if scenario_by_name(chaos_name).workload == "video":
        return ServeScenario(
            name=f"chaos-{chaos_name}",
            workload=WorkloadConfig(
                kind="video", rate_rps=2.0, classes=VIDEO_MIX
            ),
            batching=BatchingConfig(mix_scales=False),
            session_affinity=True,
        )
    return ServeScenario(name=f"chaos-{chaos_name}")


def _serve_rows(config: CampaignConfig, cells, *, jobs: int, cache):
    """Run serving cells (both engine modes) through the serve sweep."""
    from repro.serve.sweep import ServeJob, run_serve_jobs

    serve_jobs = []
    for scenario_name, policy_name, seed in cells:
        plan = build_plan(scenario_name, seed, None)
        policy = _policy_for(policy_name)
        scenario = _serve_scenario(scenario_name)
        for mode in ("exact", "fast"):
            serve_jobs.append(
                ServeJob(
                    scenario,
                    duration_s=config.serve_duration_s,
                    seed=seed,
                    fault_plan=plan,
                    recovery=policy,
                    engine_mode=mode,
                )
            )
    reports = run_serve_jobs(serve_jobs, workers=jobs, cache=cache)
    rows = []
    for i, (scenario_name, policy_name, seed) in enumerate(cells):
        exact = reports[2 * i].to_payload()
        fast = reports[2 * i + 1].to_payload()
        invariants = check_serve_cell(exact, fast)
        rows.append(
            _row(scenario_name, policy_name, seed, "serve", exact, fast, invariants)
        )
    return rows


def _row(
    scenario: str,
    policy: str,
    seed: int,
    kind: str,
    exact: dict,
    fast: dict,
    invariants: list[InvariantResult],
) -> dict:
    return {
        "scenario": scenario,
        "policy": policy,
        "seed": seed,
        "kind": kind,
        "exact": exact,
        "fast": fast,
        "invariants": [inv.to_payload() for inv in invariants],
    }


def run_campaign(
    config: CampaignConfig, *, jobs: int = 1, cache=None
) -> CampaignReport:
    """Run every cell, judge every invariant, stamp the campaign digest.

    Results merge in :meth:`CampaignConfig.cells` order regardless of
    worker completion order or cache hits, so the digest is a pure
    function of the config.
    """
    from dataclasses import asdict

    from repro.perf.digest import canonical_digest

    train_cells = [
        c for c in config.cells() if SCENARIOS[c[0]].kind == "train"
    ]
    serve_cells = [
        c for c in config.cells() if SCENARIOS[c[0]].kind == "serve"
    ]
    rows = _train_rows(config, train_cells, jobs=jobs, cache=cache)
    rows += _serve_rows(config, serve_cells, jobs=jobs, cache=cache)
    order = {cell: i for i, cell in enumerate(config.cells())}
    rows.sort(key=lambda r: order[(r["scenario"], r["policy"], r["seed"])])
    report = CampaignReport(config=asdict(config), rows=rows)
    report.digest = canonical_digest(
        {"kind": "chaos-campaign", "config": config, "rows": rows}
    )
    return report
