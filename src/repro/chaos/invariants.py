"""Machine-checked invariants for chaos campaign cells.

Each invariant is a pure predicate over run *payloads* (the same
JSON-encodable dicts that travel through the result cache), so a cached
cell is checked exactly like a freshly simulated one.  A red invariant
carries enough detail to reproduce: the campaign report pins the cell's
(scenario, policy, seed) coordinates next to it.

Training cells check:

* **ledger-conservation** — the recovery accounting buckets
  (productive + checkpoint + detection + lost work + recovery) sum to the
  independently accumulated simulation clock; nothing is double-charged
  or silently dropped.
* **fast-exact-identity** — the trace/replay fast engine produced a
  bit-identical point to the exact engine under this fault plan.
* **corruption-detected** — every wire corruption event was caught by a
  CRC check (no flipped payload reached the optimizer state).
* **checkpoint-recovery** — restarts never restored a corrupt snapshot:
  skips are bounded by detected corruptions.
* **blast-radius** — the final world size equals the scenario's declared
  topological footprint (node/switch/partition lowering is exact).

Serving cells check **request-conservation** (completed + shed ==
arrived), **failure-detected**, and **fast-exact-identity**; video cells
additionally check **session-conservation** (every session's frames
completed or shed — no frame lost across a mid-stream failover).
"""

from __future__ import annotations

from dataclasses import dataclass


#: relative tolerance for the ledger sum: both sides accumulate the same
#: float charges in a different association order
LEDGER_REL_TOL = 1e-9


@dataclass(frozen=True)
class InvariantResult:
    """Outcome of one invariant on one campaign cell."""

    name: str
    ok: bool
    detail: str = ""

    def to_payload(self) -> dict:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


def _first_diff(a: dict, b: dict, prefix: str = "") -> str:
    """Path of the first differing key between two payload dicts."""
    for key in sorted(set(a) | set(b)):
        path = f"{prefix}{key}"
        if key not in a or key not in b:
            return f"{path} present on one side only"
        va, vb = a[key], b[key]
        if isinstance(va, dict) and isinstance(vb, dict):
            diff = _first_diff(va, vb, prefix=f"{path}.")
            if diff:
                return diff
        elif va != vb:
            return f"{path}: {va!r} != {vb!r}"
    return ""


def ledger_conservation(resilience: dict) -> InvariantResult:
    """productive + overheads == wall clock (no lost or invented time)."""
    buckets = (
        resilience["productive_s"]
        + resilience["checkpoint_s"]
        + resilience["detection_s"]
        + resilience["lost_work_s"]
        + resilience["recovery_s"]
    )
    wall = resilience["wall_clock_s"]
    err = abs(buckets - wall) / max(abs(wall), 1e-12)
    return InvariantResult(
        "ledger-conservation",
        err <= LEDGER_REL_TOL,
        f"buckets {buckets:.9f}s vs wall clock {wall:.9f}s "
        f"(rel err {err:.3e})",
    )


def corruption_detected(trace_kinds: dict) -> InvariantResult:
    """Every wire corruption paired with a CRC detection."""
    corrupt = trace_kinds.get("wire-corrupt", 0)
    caught = trace_kinds.get("crc-detected", 0)
    return InvariantResult(
        "corruption-detected",
        corrupt == caught,
        f"{corrupt} wire-corrupt event(s), {caught} crc-detected",
    )


def checkpoint_recovery(trace_kinds: dict) -> InvariantResult:
    """Restart never restored corrupt state: each skip maps to a detected
    corruption, and the run completing at all means a valid snapshot was
    always found."""
    corrupt = trace_kinds.get("ckpt-corrupt", 0)
    skipped = trace_kinds.get("ckpt-corrupt-skipped", 0)
    return InvariantResult(
        "checkpoint-recovery",
        skipped <= corrupt,
        f"{skipped} corrupt snapshot(s) skipped of {corrupt} written",
    )


def blast_radius(resilience: dict, expected: int) -> InvariantResult:
    """Final world size matches the scenario's topological footprint."""
    final = resilience["final_world_size"]
    return InvariantResult(
        "blast-radius",
        final == expected,
        f"final world {final}, expected {expected} survivor(s)",
    )


def fast_exact_identity(fast: dict, exact: dict) -> InvariantResult:
    """Fast engine payload bit-identical to the exact engine's."""
    if fast == exact:
        return InvariantResult("fast-exact-identity", True, "bit-identical")
    return InvariantResult(
        "fast-exact-identity", False, _first_diff(fast, exact) or "payloads differ"
    )


def request_conservation(summary: dict) -> InvariantResult:
    """Serving ledger: every arrived request completed or shed."""
    arrived = summary["arrived"]
    accounted = summary["completed"] + summary["shed"]
    return InvariantResult(
        "request-conservation",
        accounted == arrived,
        f"{summary['completed']} completed + {summary['shed']} shed "
        f"of {arrived} arrived",
    )


def session_conservation(summary: dict) -> InvariantResult:
    """Video ledger: every session's frames completed or shed.

    The per-session partition is enforced inside
    :meth:`repro.serve.slo.SLOLedger.finalize` (contiguous frame runs, a
    hard error on any gap); this invariant re-checks the aggregate frame
    conservation on the cached payload so a stale or hand-edited cell
    cannot pass silently.
    """
    v = summary["video"]
    accounted = v["frames_completed"] + v["frames_shed"]
    return InvariantResult(
        "session-conservation",
        accounted == v["frames_arrived"],
        f"{v['frames_completed']} completed + {v['frames_shed']} shed of "
        f"{v['frames_arrived']} frame(s) across {v['sessions']} session(s), "
        f"{v['rehomes']} re-home(s)",
    )


def failure_detected(summary: dict) -> InvariantResult:
    """The injected replica failure was actually declared."""
    n = summary["detections"]
    return InvariantResult(
        "failure-detected", n >= 1, f"{n} failure(s) detected"
    )


def check_train_cell(
    exact_payload: dict, fast_payload: dict, expected_survivors: int | None
) -> list[InvariantResult]:
    """All invariants for one training cell (payloads from both engines).

    Structural checks run on the *exact* payload; the identity invariant
    then extends every one of them to the fast engine.
    """
    resilience = exact_payload["resilience"]
    kinds = resilience["trace_kinds"]
    results = [
        ledger_conservation(resilience),
        corruption_detected(kinds),
        checkpoint_recovery(kinds),
    ]
    if expected_survivors is not None:
        results.append(blast_radius(resilience, expected_survivors))
    results.append(fast_exact_identity(fast_payload, exact_payload))
    return results


def check_serve_cell(
    exact_payload: dict, fast_payload: dict
) -> list[InvariantResult]:
    """All invariants for one serving cell."""
    summary = exact_payload["summary"]
    results = [
        request_conservation(summary),
        failure_detected(summary),
    ]
    if "video" in summary:
        results.append(session_conservation(summary))
    results.append(fast_exact_identity(fast_payload, exact_payload))
    return results
