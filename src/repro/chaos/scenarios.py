"""Named chaos scenarios: seeded fault plans with known blast radii.

Each scenario is a *family* of fault plans indexed by seed: the seed
shifts injection times across step boundaries and re-keys every
probabilistic stream (drops, corruption rolls), while the scenario fixes
the fault class and its topological footprint.  Campaign cells are then
``(scenario, policy, seed)`` triples whose outcomes are fully
deterministic — a red cell reproduces from its coordinates alone.

Training scenarios use the correlated-fault vocabulary
(:class:`~repro.faults.NodeFailure`, :class:`~repro.faults.SwitchFailure`,
:class:`~repro.faults.PartitionFault`, :class:`~repro.faults.
CorruptionFault`) and carry an ``expected_survivors`` function of the
topology — the campaign's blast-radius invariant checks the final world
size against it.  Serving scenarios stick to plain
:class:`~repro.faults.RankFailure` (replica ids have no fabric topology).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError
from repro.faults.domains import Topology
from repro.faults.plan import (
    CorruptionFault,
    FaultPlan,
    NodeFailure,
    PartitionFault,
    RankFailure,
    SwitchFailure,
)


def _stagger(seed: int, base: float) -> float:
    """Deterministic per-seed injection-time offset.

    Shifts the fault by a quarter step-ish increment so different seeds
    land the failure at different phases of the step/checkpoint cadence
    (mid-step, just after a snapshot, just before one).
    """
    return base + 0.25 * (seed % 4)


@dataclass(frozen=True)
class ChaosScenario:
    """One named fault family: plan builder plus expected blast radius."""

    name: str
    #: "train" runs the scaling study's elastic loop; "serve" runs the
    #: serving simulator
    kind: str
    description: str
    build: Callable[[int, Topology | None], FaultPlan]
    #: expected live ranks at run end given the topology (training only;
    #: None disables the blast-radius invariant for this scenario)
    expected_survivors: Callable[[Topology], int] | None = None
    #: serving cells only: "default" replays the single-image mix,
    #: "video" a session-affine video-stream mix (scale-pure batching)
    workload: str = "default"


def _node_failure_plan(seed: int, topo: Topology | None) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        faults=(NodeFailure(node=1, time=_stagger(seed, 2.0)),),
    )


def _switch_failure_plan(seed: int, topo: Topology | None) -> FaultPlan:
    assert topo is not None
    if topo.num_switches < 2:
        raise ConfigError(
            f"switch-failure needs >= 2 leaf switches to leave survivors; "
            f"{topo.num_nodes} node(s) at {topo.nodes_per_switch}/switch "
            f"give {topo.num_switches} (use >= "
            f"{2 * topo.nodes_per_switch * topo.gpus_per_node} GPUs)"
        )
    return FaultPlan(
        seed=seed,
        faults=(
            SwitchFailure(
                switch=topo.num_switches - 1, time=_stagger(seed, 2.5)
            ),
        ),
    )


def _partition_plan(seed: int, topo: Topology | None) -> FaultPlan:
    assert topo is not None
    if topo.num_nodes < 2:
        raise ConfigError("partition needs >= 2 nodes")
    island = tuple(range(topo.num_nodes // 2, topo.num_nodes))
    return FaultPlan(
        seed=seed,
        faults=(
            PartitionFault(
                nodes=island, start=_stagger(seed, 2.0), duration=6.0
            ),
        ),
    )


def _wire_corruption_plan(seed: int, topo: Topology | None) -> FaultPlan:
    # permanent window: message-level fault windows run on the
    # collective's local clock (each engine step starts at 0), so a
    # delayed window would never cover a transfer.  The active window
    # also pins the steady-state detector — every step is simulated, so
    # no corruption roll is ever extrapolated away.
    return FaultPlan(
        seed=seed,
        faults=(CorruptionFault(target="wire", prob=0.02),),
    )


def _ckpt_corruption_plan(seed: int, topo: Topology | None) -> FaultPlan:
    # torn snapshots plus a node failure that forces a restart to *read*
    # them: recovery must walk past corrupt files by checksum.  The
    # failure lands after the first periodic save so keep_last retains
    # two candidates.
    return FaultPlan(
        seed=seed,
        faults=(
            CorruptionFault(target="checkpoint", prob=0.3),
            NodeFailure(node=1, time=_stagger(seed, 6.0)),
        ),
    )


def _serve_failover_plan(seed: int, topo: Topology | None) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        faults=(
            RankFailure(rank=1, time=20.0 + 2.0 * (seed % 3), down_s=25.0),
        ),
    )


def _video_failover_plan(seed: int, topo: Topology | None) -> FaultPlan:
    # replica 0: the video pool's scale-down victim is always the highest
    # replica id, so replica 0 is guaranteed alive (and streaming) at the
    # injection time — the failure always lands mid-stream
    return FaultPlan(
        seed=seed,
        faults=(
            RankFailure(rank=0, time=20.0 + 2.0 * (seed % 3), down_s=25.0),
        ),
    )


def _minus_node(topo: Topology) -> int:
    return topo.num_ranks - topo.gpus_per_node


def _minus_last_switch(topo: Topology) -> int:
    dead_nodes = len(topo.nodes_behind_switch(topo.num_switches - 1))
    return topo.num_ranks - dead_nodes * topo.gpus_per_node


def _minus_partition(topo: Topology) -> int:
    island = topo.num_nodes - topo.num_nodes // 2
    return topo.num_ranks - island * topo.gpus_per_node


SCENARIOS: dict[str, ChaosScenario] = {
    s.name: s
    for s in (
        ChaosScenario(
            "node-failure", "train",
            "one whole node dies: its co-located ranks fail as one domain",
            _node_failure_plan,
            expected_survivors=_minus_node,
        ),
        ChaosScenario(
            "switch-failure", "train",
            "a leaf switch dies: every rank behind it leaves the job",
            _switch_failure_plan,
            expected_survivors=_minus_last_switch,
        ),
        ChaosScenario(
            "partition", "train",
            "the fabric splits; the minority island is severed for 6 s",
            _partition_plan,
            expected_survivors=_minus_partition,
        ),
        ChaosScenario(
            "wire-corruption", "train",
            "bit flips on the wire; CRC detects, the retry ladder resends",
            _wire_corruption_plan,
            expected_survivors=lambda topo: topo.num_ranks,
        ),
        ChaosScenario(
            "ckpt-corruption", "train",
            "torn snapshots + a node failure: restart skips corrupt files",
            _ckpt_corruption_plan,
            expected_survivors=_minus_node,
        ),
        ChaosScenario(
            "serve-failover", "serve",
            "a serving replica dies mid-run and later returns",
            _serve_failover_plan,
        ),
        ChaosScenario(
            "video-failover", "serve",
            "a replica dies mid-stream: whole sessions re-home, frames "
            "conserve per session",
            _video_failover_plan,
            workload="video",
        ),
    )
}

TRAIN_SCENARIOS = tuple(s for s in SCENARIOS if SCENARIOS[s].kind == "train")
SERVE_SCENARIOS = tuple(s for s in SCENARIOS if SCENARIOS[s].kind == "serve")


def scenario_by_name(name: str) -> ChaosScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown chaos scenario {name!r}; "
            f"choose from {', '.join(sorted(SCENARIOS))}"
        ) from None


def build_plan(name: str, seed: int, topology: Topology | None) -> FaultPlan:
    """The scenario's fault plan for one campaign seed."""
    return scenario_by_name(name).build(seed, topology)
