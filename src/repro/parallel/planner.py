"""The (dp, tp, pp) layout planner for a target world size.

Enumerates every valid layout point — tp over the node's divisors that
divide the model width, pp over contiguous stage splits, microbatch counts
that cut the replica batch evenly, optional fusion-threshold and tuned
selection-table variants — prices each through the ordinary cached
scaling-point machinery (:func:`repro.perf.parallel.run_point_jobs`, so a
warm result cache short-circuits and ``jobs > 1`` fans out over worker
processes), and emits a ranked recommendation.

The search loop follows the PR 5 selection-table autotuner: the planner
configuration content-digests to a cache key, an in-process memo
short-circuits repeat plans, and the report is pure data — byte-identical
across jobs=1 / jobs=N / warm-cache runs (pinned by tests).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, replace

from repro.core.calibration import HOROVOD_TUNED, TRAIN_BATCH_PER_GPU
from repro.errors import ConfigError
from repro.hardware.specs import LASSEN, ClusterSpec
from repro.models.registry import get_model_cost
from repro.parallel.layout import SCHEDULES, ParallelLayout, model_width
from repro.utils.units import MIB

#: the paper's nominal training run: DIV2K's 800 training images for 300
#: epochs — the workload behind every simulated time-to-train figure
NOMINAL_TRAIN_IMAGES = 800 * 300


@dataclass(frozen=True)
class PlannerConfig:
    """Everything that determines a plan (the digest preimage)."""

    ranks: int
    scenario: str = "MPI-Opt"
    model: str = "edsr-paper"
    batch_per_gpu: int = TRAIN_BATCH_PER_GPU
    cluster: ClusterSpec = LASSEN
    engine_mode: str = "fast"
    #: largest tensor-parallel degree to consider (0 = the node width)
    max_tp: int = 0
    #: largest pipeline depth to consider
    max_pp: int = 4
    #: microbatch counts to try for pipelined layouts
    microbatches: tuple[int, ...] = (2, 4, 8, 16)
    #: extra Horovod fusion-threshold variants (MiB) beyond the tuned default
    fusion_mib: tuple[int, ...] = ()
    schedules: tuple[str, ...] = ("1f1b",)
    #: also price every candidate under a tuned comm selection table
    use_tuned_tables: bool = False
    warmup_steps: int = 1
    measure_steps: int = 2

    def __post_init__(self) -> None:
        if self.ranks < 2:
            raise ConfigError(f"ranks must be >= 2, got {self.ranks}")
        if self.engine_mode not in ("exact", "fast"):
            raise ConfigError(
                f"engine_mode must be 'exact' or 'fast', got "
                f"{self.engine_mode!r}"
            )
        if self.max_tp < 0:
            raise ConfigError(f"max_tp must be >= 0, got {self.max_tp}")
        if self.max_pp < 1:
            raise ConfigError(f"max_pp must be >= 1, got {self.max_pp}")
        if not self.microbatches or any(m < 1 for m in self.microbatches):
            raise ConfigError("microbatches must be non-empty, all >= 1")
        for schedule in self.schedules:
            if schedule not in SCHEDULES:
                raise ConfigError(
                    f"schedule must be one of {SCHEDULES}, got {schedule!r}"
                )
        if not self.schedules:
            raise ConfigError("schedules must be non-empty")


#: in-process memo (digest -> report): planning is deterministic and the
#: CLI/tests re-plan the same configuration repeatedly
_PLAN_MEMO: dict[str, dict] = {}


def plan_digest(config: PlannerConfig) -> str:
    from repro.comm.selection import active_table_digests
    from repro.perf.digest import canonical_digest, env_knobs

    return canonical_digest(
        {
            "kind": "hybrid-plan",
            "config": config,
            "env": env_knobs(),
            "comm_tables": active_table_digests(),
        }
    )


def scaled_cluster(config: PlannerConfig) -> ClusterSpec:
    """The cluster spec grown to hold the target world (Lassen-like
    scaled fabric: same node and links, more of them)."""
    spec = config.cluster
    gpn = spec.node.gpus_per_node
    needed = (config.ranks + gpn - 1) // gpn
    if needed > spec.max_nodes:
        spec = spec.with_nodes(needed)
    return spec


def enumerate_layouts(config: PlannerConfig) -> list[ParallelLayout]:
    """Every valid (dp, tp, pp, microbatches, schedule) point, in a
    deterministic tp-major order.  Pure data parallelism (dp = ranks) is
    always the first candidate — the baseline every plan compares against.
    """
    cost = get_model_cost(config.model)
    width = model_width(cost)
    gpn = config.cluster.node.gpus_per_node
    max_tp = config.max_tp or gpn
    layouts: list[ParallelLayout] = []
    for tp in range(1, max_tp + 1):
        if gpn % tp:
            continue  # tp must slice a node evenly
        if tp > 1 and (width == 0 or width % tp):
            continue  # tp must divide the model width
        for pp in range(1, config.max_pp + 1):
            footprint = tp * pp
            if config.ranks % footprint:
                continue
            if gpn % footprint and footprint % gpn:
                continue  # replicas must pack evenly into nodes
            if pp > len(cost.layers):
                continue
            replica_batch = config.batch_per_gpu * footprint
            if pp == 1:
                counts: tuple[int, ...] = (1,)
                schedules: tuple[str, ...] = (config.schedules[0],)
            else:
                counts = tuple(
                    m for m in sorted(set(config.microbatches))
                    if replica_batch % m == 0
                )
                schedules = config.schedules
                if not counts:
                    continue
            for microbatches in counts:
                for schedule in schedules:
                    layouts.append(
                        ParallelLayout(
                            dp=config.ranks // footprint,
                            tp=tp,
                            pp=pp,
                            microbatches=microbatches,
                            schedule=schedule,
                        )
                    )
    return layouts


def _study_config(config: PlannerConfig, spec, layout, fusion_mib):
    from repro.core.study import StudyConfig

    horovod = HOROVOD_TUNED
    if fusion_mib:
        horovod = replace(horovod, fusion_threshold=fusion_mib * MIB)
    return StudyConfig(
        model=config.model,
        batch_per_gpu=config.batch_per_gpu,
        cluster=spec,
        horovod=horovod,
        engine_mode=config.engine_mode,
        warmup_steps=config.warmup_steps,
        measure_steps=config.measure_steps,
        layout=layout,
    )


def _tuned_table(config: PlannerConfig, spec, *, cache=None):
    from repro.comm.tuning import TuningConfig, tune_table
    from repro.core.scenarios import scenario_by_name

    backend = scenario_by_name(config.scenario).backend
    return tune_table(
        TuningConfig(backend=backend, cluster=spec, scenario=config.scenario),
        cache=cache,
    )


def plan_hybrid(
    config: PlannerConfig, *, jobs: int = 1, cache=None, use_memo: bool = True
) -> dict:
    """Search the layout space and return the ranked plan report.

    ``jobs > 1`` fans candidate pricing out over worker processes through
    :func:`~repro.perf.parallel.run_point_jobs`; the result is
    byte-identical either way (deterministic candidate order, parent-side
    cache, stable ranking keys).
    """
    import json

    from repro.comm.selection import (
        active_tables,
        clear_active_tables,
        set_active_table,
    )
    from repro.core.scenarios import scenario_by_name
    from repro.core.study import ScalingStudy
    from repro.errors import ConfigError as _ConfigError
    from repro.perf.parallel import (
        PointJob,
        active_table_payloads,
        run_point_jobs,
    )

    digest = plan_digest(config)
    if use_memo and digest in _PLAN_MEMO:
        return json.loads(json.dumps(_PLAN_MEMO[digest]))
    if cache is not None and getattr(cache, "enabled", True):
        hit = cache.get(digest)
        if hit is not None:
            if use_memo:
                _PLAN_MEMO[digest] = hit
            return json.loads(json.dumps(hit))

    scenario = scenario_by_name(config.scenario)
    spec = scaled_cluster(config)
    fusion_variants = (0,) + tuple(sorted(set(config.fusion_mib)))
    tables = ("default", "tuned") if config.use_tuned_tables else ("default",)

    # memory feasibility pre-filter: infeasible layouts are reported, not
    # priced (a worker raising a simulated OOM would poison the whole batch)
    candidates: list[tuple[ParallelLayout, int]] = []
    infeasible: list[dict] = []
    for layout in enumerate_layouts(config):
        for fusion_mib in fusion_variants:
            probe = ScalingStudy(
                scenario, _study_config(config, spec, layout, fusion_mib)
            )
            try:
                from repro.parallel.executor import check_hybrid_memory

                check_hybrid_memory(
                    probe, layout, probe.batch_for(config.ranks)
                )
            except _ConfigError as err:
                infeasible.append(
                    {
                        "dp": layout.dp, "tp": layout.tp, "pp": layout.pp,
                        "microbatches": layout.microbatches,
                        "schedule": layout.schedule,
                        "fusion_mib": fusion_mib,
                        "reason": str(err),
                    }
                )
                continue
            candidates.append((layout, fusion_mib))
    if not candidates:
        raise ConfigError(
            f"no feasible layout for {config.ranks} ranks of "
            f"{config.model} (batch {config.batch_per_gpu}/GPU)"
        )

    rows: list[dict] = []
    global_batch = config.ranks * config.batch_per_gpu
    steps_to_train = math.ceil(NOMINAL_TRAIN_IMAGES / global_batch)

    def price_batch(table_name: str) -> None:
        # workers re-install the parent's active selection tables; the
        # point digest covers their digests, so default/tuned rows never
        # collide in the cache
        payloads = active_table_payloads()
        point_jobs = [
            PointJob(
                config.scenario, config.ranks,
                _study_config(config, spec, layout, fusion_mib),
                comm_tables=payloads,
            )
            for layout, fusion_mib in candidates
        ]
        points = run_point_jobs(point_jobs, workers=jobs, cache=cache)
        for (layout, fusion_mib), point in zip(candidates, points):
            par = point.parallelism or {}
            rows.append(
                {
                    "dp": layout.dp,
                    "tp": layout.tp,
                    "pp": layout.pp,
                    "microbatches": layout.microbatches,
                    "schedule": layout.schedule,
                    "fusion_mib": fusion_mib,
                    "table": table_name,
                    "pure_dp": layout.is_pure_dp,
                    "step_time": point.step_time,
                    "images_per_second": point.images_per_second,
                    "time_to_train_s": steps_to_train * point.step_time,
                    "exposed_comm_time": point.exposed_comm_time,
                    "bubble_fraction": par.get("bubble_fraction", 0.0),
                    "tp_comm_time": par.get("tp_comm_time", 0.0),
                    "pp_hop_time": par.get("pp_hop_time", 0.0),
                }
            )

    price_batch("default")
    if "tuned" in tables:
        previous = active_tables()
        try:
            set_active_table(_tuned_table(config, spec, cache=cache))
            price_batch("tuned")
        finally:
            clear_active_tables()
            for table in previous.values():
                set_active_table(table)

    rows.sort(
        key=lambda r: (
            r["step_time"], r["tp"], r["pp"], r["microbatches"],
            r["schedule"], r["fusion_mib"], r["table"],
        )
    )
    best = rows[0]
    best_dp = next((r for r in rows if r["pure_dp"]), None)
    best_hybrid = next((r for r in rows if not r["pure_dp"]), None)
    speedup = None
    if best_dp is not None and best_hybrid is not None:
        speedup = best_dp["step_time"] / best_hybrid["step_time"]
    report = {
        "kind": "hybrid-plan",
        "digest": digest,
        "config": asdict(config),
        "ranks": config.ranks,
        "global_batch": global_batch,
        "steps_to_train": steps_to_train,
        "nominal_train_images": NOMINAL_TRAIN_IMAGES,
        "candidates": len(rows),
        "points": rows,
        "infeasible": infeasible,
        "best": best,
        "best_pure_dp": best_dp,
        "best_hybrid": best_hybrid,
        "hybrid_speedup": speedup,
    }
    # round-trip through JSON so the memo, the disk cache, and the caller
    # all hold the identical (and provably serializable) payload
    report = json.loads(json.dumps(report))
    if use_memo:
        _PLAN_MEMO[digest] = report
    if cache is not None and getattr(cache, "enabled", True):
        cache.put(digest, report)
    return json.loads(json.dumps(report))
