"""Hybrid (dp x tp x pp) parallelism on the simulation engine.

``layout`` describes and validates a parallel layout, ``partition`` shards
the per-layer cost model for it, ``executor`` prices hybrid steps on the
engine, and ``planner`` searches the layout space for a target world size
(``python -m repro hybrid plan``).

Only the dependency-free layout/partition surface is re-exported here:
``repro.core.study`` imports :class:`ParallelLayout` at module level, so
pulling the executor or planner (which import the study machinery) into
this package's import would cycle.  Import them as submodules.
"""

from repro.parallel.layout import SCHEDULES, ParallelLayout, model_width
from repro.parallel.partition import (
    StageShard,
    shard_layer,
    split_stage_bounds,
    stage_models,
)

__all__ = [
    "SCHEDULES",
    "ParallelLayout",
    "model_width",
    "StageShard",
    "shard_layer",
    "split_stage_bounds",
    "stage_models",
]
