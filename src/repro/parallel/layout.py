"""The (dp, tp, pp) parallel layout descriptor and its validity rules.

A layout places ``dp * tp * pp`` ranks on the cluster:

* ``tp`` ranks shard every channel-structured layer's output channels
  (Megatron-style) and exchange activations over NVLink via the
  hierarchical backend;
* ``pp`` stages split the layer list contiguously and exchange
  activation/gradient point-to-point transfers over IB, with the batch cut
  into ``microbatches`` pipeline slots (GPipe or 1F1B ordering);
* ``dp`` replicas of that (tp x pp) grid run Horovod data parallelism
  exactly as the pure data-parallel path does.

``dp == 0`` means "derive from the world size" so one
:class:`~repro.core.study.StudyConfig` can sweep GPU counts; the planner
always pins dp explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

#: pipeline schedules the executor understands.  Both fill and drain the
#: same (microbatches + pp - 1) slots, so their wall time is identical in
#: this model; they differ in live-activation memory (GPipe holds every
#: microbatch, 1F1B at most ``pp``).
SCHEDULES = ("1f1b", "gpipe")


def model_width(cost) -> int:
    """The model's feature width: the widest channel-structured layer.

    Tensor parallelism must divide this cleanly (every shardable layer's
    ``cout`` is a multiple of the width's divisors in the paper models, and
    the per-layer check in :func:`repro.parallel.partition.shard_layer`
    still guards stragglers).
    """
    return max((layer.cout for layer in cost.layers), default=0)


@dataclass(frozen=True)
class ParallelLayout:
    """One point in the (dp, tp, pp, microbatches, schedule) space."""

    dp: int = 0  # 0 = derive from the world size at run time
    tp: int = 1
    pp: int = 1
    microbatches: int = 1
    schedule: str = "1f1b"

    def __post_init__(self) -> None:
        if self.dp < 0:
            raise ConfigError(f"dp must be >= 0 (0 = auto), got {self.dp}")
        if self.tp < 1:
            raise ConfigError(f"tp must be >= 1, got {self.tp}")
        if self.pp < 1:
            raise ConfigError(f"pp must be >= 1, got {self.pp}")
        if self.microbatches < 1:
            raise ConfigError(
                f"microbatches must be >= 1, got {self.microbatches}"
            )
        if self.schedule not in SCHEDULES:
            raise ConfigError(
                f"schedule must be one of {SCHEDULES}, got {self.schedule!r}"
            )
        if self.pp == 1 and self.microbatches > 1:
            raise ConfigError(
                f"microbatches={self.microbatches} without pipeline stages "
                f"(pp=1) only adds launch overhead; raise pp or drop "
                f"microbatching"
            )

    @property
    def is_pure_dp(self) -> bool:
        """True when the layout degenerates to the data-parallel path."""
        return self.tp == 1 and self.pp == 1 and self.microbatches == 1

    @property
    def model_parallel_size(self) -> int:
        """Ranks holding one model replica (the tp x pp footprint)."""
        return self.tp * self.pp

    # -- validity ------------------------------------------------------------
    def resolved(self, num_gpus: int) -> "ParallelLayout":
        """A concrete layout for ``num_gpus`` ranks (dp pinned).

        Raises :class:`ConfigError` when the product cannot tile the
        world: dp * tp * pp must equal the world size exactly.
        """
        fp = self.model_parallel_size
        if self.dp == 0:
            if num_gpus % fp:
                raise ConfigError(
                    f"tp*pp = {self.tp}*{self.pp} = {fp} does not divide "
                    f"world size {num_gpus}"
                )
            return replace(self, dp=num_gpus // fp)
        if self.dp * fp != num_gpus:
            raise ConfigError(
                f"dp*tp*pp = {self.dp}*{self.tp}*{self.pp} = "
                f"{self.dp * fp} must equal world size {num_gpus}"
            )
        return self

    def validate_model(self, cost) -> None:
        """tp must divide the model's feature width (clean channel shards),
        and the pipeline cannot have more stages than layers."""
        if self.pp > len(cost.layers):
            raise ConfigError(
                f"pp={self.pp} exceeds the model's {len(cost.layers)} layers"
            )
        if self.tp == 1:
            return
        width = model_width(cost)
        if width == 0 or width % self.tp:
            raise ConfigError(
                f"tp={self.tp} must divide model width {width} "
                f"({cost.name})"
            )

    def validate_batch(self, batch_per_gpu: int) -> None:
        """The microbatch count must divide the replica's batch share.

        One pipeline replica spans tp*pp GPUs, so its share of the global
        batch is ``batch_per_gpu * tp * pp`` images; the microbatch count
        must cut that evenly.
        """
        replica_batch = batch_per_gpu * self.tp * self.pp
        if replica_batch % self.microbatches:
            raise ConfigError(
                f"microbatch count {self.microbatches} must divide the "
                f"global batch share {replica_batch} of one pipeline "
                f"replica (batch_per_gpu={batch_per_gpu} x tp={self.tp} "
                f"x pp={self.pp})"
            )

    def validate_cluster(self, gpus_per_node: int) -> None:
        """The tp*pp footprint must pack evenly into nodes.

        Either several replicas share a node (footprint divides the node)
        or one replica spans whole nodes (node divides the footprint);
        anything else leaves the data-parallel groups with ragged node
        placement the two-level collectives cannot describe.
        """
        fp = self.model_parallel_size
        if gpus_per_node % fp and fp % gpus_per_node:
            raise ConfigError(
                f"model-parallel footprint tp*pp = {fp} must pack evenly "
                f"into nodes of {gpus_per_node} GPUs (divide it or be a "
                f"multiple of it)"
            )
