"""Partitioning the per-layer cost model for a (tp, pp) grid.

Tensor parallelism shards every channel-structured layer's output
channels: a tp-shard of a conv keeps ``cout/tp`` filters, so parameters,
FLOPs, activation bytes and bias all divide exactly (every term is a
multiple of ``cout``).  Layers whose ``cout`` tp does not divide (e.g.
EDSR's 3-channel tail) stay replicated: full compute on every tp rank and
a small gradient allreduce across the tp group to keep the replicas in
lock step.

Pipeline parallelism cuts the layer list into ``pp`` contiguous stages
balanced by forward FLOPs (greedy prefix packing; deterministic), and each
stage boundary records the *full* (un-sharded) activation bytes its last
layer emits — the payload of the stage-to-stage point-to-point hop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.models.costing import LayerCost, ModelCostModel
from repro.parallel.layout import ParallelLayout


def is_shardable(layer: LayerCost, tp: int) -> bool:
    """A layer shards iff tp divides its output channels."""
    return tp > 1 and layer.cout > 0 and layer.cout % tp == 0


def shard_layer(layer: LayerCost, tp: int) -> LayerCost:
    """One tp rank's share of ``layer`` (exact: every term divides)."""
    if not is_shardable(layer, tp):
        return layer
    return replace(
        layer,
        params=layer.params // tp,
        flops_forward=layer.flops_forward / tp,
        activation_bytes=layer.activation_bytes // tp,
        bias_params=layer.bias_params // tp,
        cout=layer.cout // tp,
    )


def split_stage_bounds(
    layers: list[LayerCost], pp: int
) -> list[tuple[int, int]]:
    """Contiguous ``[start, end)`` layer ranges, balanced by forward FLOPs.

    Greedy prefix packing against the remaining-work average: each stage
    takes layers until adding the next would overshoot its target by more
    than stopping undershoots it, always leaving at least one layer per
    remaining stage.  Deterministic in the layer list alone.
    """
    if pp < 1:
        raise ConfigError(f"pp must be >= 1, got {pp}")
    if pp > len(layers):
        raise ConfigError(
            f"pp={pp} exceeds the model's {len(layers)} layers"
        )
    bounds: list[tuple[int, int]] = []
    start = 0
    remaining = sum(l.flops_forward for l in layers)
    for stage in range(pp):
        stages_left = pp - stage
        if stages_left == 1:
            bounds.append((start, len(layers)))
            break
        target = remaining / stages_left
        max_end = len(layers) - (stages_left - 1)
        end = start + 1
        acc = layers[start].flops_forward
        while end < max_end:
            nxt = acc + layers[end].flops_forward
            if nxt > target and (nxt - target) > (target - acc):
                break
            acc = nxt
            end += 1
        bounds.append((start, end))
        remaining -= acc
        start = end
    return bounds


@dataclass(frozen=True)
class StageShard:
    """One pipeline stage's per-rank cost after tp sharding."""

    index: int
    cost: ModelCostModel  # tp-sharded layer costs of this stage
    #: names of the layers actually sharded (the rest are replicated)
    sharded_layers: tuple[str, ...]
    #: per-rank params of replicated (non-shardable) layers — their
    #: gradients need a tp-group allreduce each step
    replicated_params: int
    #: full (un-sharded) activation bytes per image the stage's last layer
    #: emits; the stage-boundary hop payload (0 for the final stage)
    boundary_activation_bytes: int


def stage_models(
    cost: ModelCostModel, layout: ParallelLayout
) -> list[StageShard]:
    """The per-rank stage shards of ``cost`` under ``layout``."""
    tp = layout.tp
    bounds = split_stage_bounds(cost.layers, layout.pp)
    stages: list[StageShard] = []
    for index, (start, end) in enumerate(bounds):
        stage_layers = cost.layers[start:end]
        sharded = tuple(
            l.name for l in stage_layers if is_shardable(l, tp)
        )
        shards = [shard_layer(l, tp) for l in stage_layers]
        replicated = sum(
            l.params for l in stage_layers if not is_shardable(l, tp)
        )
        last = index == len(bounds) - 1
        stages.append(
            StageShard(
                index=index,
                cost=ModelCostModel(
                    f"{cost.name}[stage{index}]",
                    shards,
                    peak_utilization=cost.peak_utilization,
                    batch_half_point=cost.batch_half_point,
                    kernels_per_layer=cost.kernels_per_layer,
                ),
                sharded_layers=sharded,
                replicated_params=replicated,
                boundary_activation_bytes=(
                    0 if last else stage_layers[-1].activation_bytes
                ),
            )
        )
    return stages
