"""Hybrid (dp x tp x pp) step execution on the simulation engine.

One hybrid step prices three interleaved communication systems against the
partitioned compute:

* **tp** — every sharded layer allgathers its activation shard forward and
  reduce-scatters the activation gradient backward, over the NVLink-aware
  hierarchical backend built on the tp group's slice of a node.  Layers tp
  cannot shard stay replicated and pay a small tp-group gradient allreduce
  per step.
* **pp** — the batch is cut into M microbatches walked through P stages;
  adjacent stages exchange the boundary activation (forward) and its
  gradient (backward) over IB, split across the tp pairs.  Both GPipe and
  1F1B fill and drain the same ``M + P - 1`` slots, so the wall time per
  phase is ``(M + P - 1) * (bottleneck stage latency + hop)`` — the classic
  bubble fraction ``(P - 1) / (M + P - 1)``; the schedules differ only in
  live-activation memory (GPipe holds M microbatches, 1F1B at most P).
* **dp** — each rank's stage shard gradients ride the ordinary Horovod
  engine (fusion, registration cache, the scenario's backend) over a
  data-parallel group whose members sit ``tp * pp`` ranks apart, i.e. on a
  derived cluster spec with ``gpus_per_node / (tp * pp)`` ranks per node.
  The allreduce overlaps the whole backward phase, PipeDream-flush style.

Every tp/pp term is a closed-form analytic envelope, so fast and exact
engine modes agree bit-identically on them; the dp engine's fast/exact
equivalence is pinned by the existing trace/replay harness.  At
``tp = pp = 1, M = 1`` the step expression degenerates exactly to the
data-parallel formula (such layouts route through the original path).
"""

from __future__ import annotations

from dataclasses import replace

from repro.compression import CompressionConfig
from repro.core.calibration import (
    OPTIMIZER_BYTES_PER_PARAM,
    PAGEABLE_BLOCKING_FACTOR,
)
from repro.errors import ConfigError, HardwareError
from repro.hardware.cluster import build_cluster
from repro.hardware.specs import ClusterSpec
from repro.horovod.backend import build_backend
from repro.horovod.coordinator import straggler_factor
from repro.horovod.engine import HorovodEngine, StepTiming
from repro.horovod.fusion import PendingTensor
from repro.models.costing import (
    ModelCostModel,
    ThroughputModel,
    TrainingMemoryModel,
)
from repro.mpi.comm import GpuBuffer
from repro.mpi.process import WorldSpec
from repro.parallel.layout import ParallelLayout
from repro.parallel.partition import StageShard, stage_models
from repro.perf.steady import SteadyStateDetector
from repro.utils.seeding import SeedSequenceFactory


def dp_cluster_spec(spec: ClusterSpec, layout: ParallelLayout) -> ClusterSpec:
    """The data-parallel group's view of the cluster.

    One model replica occupies ``tp * pp`` consecutive ranks, so the
    members of a dp group sit that far apart: ``gpn / (tp*pp)`` of them
    share a node (or one per node once a replica fills whole nodes).  The
    derived spec keeps every link unchanged — only the rank-to-node
    packing shrinks.
    """
    fp = layout.model_parallel_size
    gpn = spec.node.gpus_per_node
    dp_gpn = max(1, gpn // fp)
    node = spec.node
    if dp_gpn != gpn:
        sockets = node.sockets if dp_gpn % node.sockets == 0 else 1
        node = replace(node, gpus_per_node=dp_gpn, sockets=sockets)
    out = spec if node is spec.node else replace(spec, node=node)
    needed = (layout.dp + dp_gpn - 1) // dp_gpn
    if needed > out.max_nodes:
        out = out.with_nodes(needed)
    return out


def check_hybrid_memory(study, layout: ParallelLayout, batch: int) -> None:
    """Raise :class:`ConfigError` when the worst stage's footprint OOMs.

    Mirrors the pure-dp feasibility check per stage shard: parameters +
    optimizer state of the resident shard, plus the live microbatches'
    activations (all M under GPipe, at most P under 1F1B), plus the fusion
    buffer and CUDA contexts.
    """
    cfg = study.config
    gpu = cfg.cluster.node.gpu
    stages = stage_models(study.cost, layout)
    mb = batch * layout.model_parallel_size // layout.microbatches
    live = (
        layout.microbatches
        if layout.schedule == "gpipe"
        else min(layout.microbatches, layout.pp)
    )
    worst, worst_stage = 0, 0
    for stage in stages:
        mem = TrainingMemoryModel(stage.cost)
        need = mem.fixed_bytes() + live * mb * mem.per_image_bytes()
        if need > worst:
            worst, worst_stage = need, stage.index
    required = (
        worst
        + cfg.horovod.fusion_threshold
        + study.contexts_per_gpu() * gpu.context_overhead_bytes
    )
    if required > gpu.memory_bytes:
        raise ConfigError(
            f"hybrid layout (dp={layout.dp}, tp={layout.tp}, "
            f"pp={layout.pp}, microbatches={layout.microbatches}, "
            f"{layout.schedule}) stage {worst_stage} needs "
            f"{required / 2**30:.2f} GiB/GPU with {live} live "
            f"microbatch(es) of {mb} image(s) but {gpu.name} has "
            f"{gpu.memory_bytes / 2**30:.0f} GiB (simulated OOM)"
        )


class HybridExecutor:
    """Prices hybrid layouts for one :class:`~repro.core.study.ScalingStudy`.

    The executor outlives one point: a sweep over GPU counts (or the
    planner's serial pricing loop) reuses it, so its steady-state detector
    carries ``rearm_if_changed`` context — the pipeline depth, microbatch
    count and world size — and re-arms the moment any of them changes.
    Without that guard a window converged at one pipeline depth would
    extrapolate a *different* layout's step time into later points.
    """

    def __init__(self, study):
        self.study = study
        cfg = study.config
        self._steady = SteadyStateDetector(
            cfg.steady_window, cfg.steady_rel_tol
        )

    # -- component pricing ---------------------------------------------------
    def _tp_comm(
        self, stages: list[StageShard], layout: ParallelLayout, mb: int
    ) -> tuple[list[float], list[float], list[float]]:
        """Per-stage (forward, backward, per-step sync) tp seconds.

        Forward: one activation allgather per sharded layer per
        microbatch; backward: the mirrored reduce-scatter of the
        activation gradients; sync: one per-step gradient allreduce for
        the replicated (non-shardable) layers.  All three are closed-form
        hierarchical envelopes — identical in fast and exact engine modes.
        """
        tp = layout.tp
        if tp == 1:
            zero = [0.0] * len(stages)
            return zero, list(zero), list(zero)
        cluster = build_cluster(self.study.config.cluster, tp)
        _, comm = build_backend(cluster, "hierarchical", num_ranks=tp)
        ag_memo: dict[int, float] = {}
        rs_memo: dict[int, float] = {}
        fwd, bwd, sync = [], [], []
        for stage in stages:
            sharded = set(stage.sharded_layers)
            f = b = 0.0
            for layer in stage.cost.layers:
                if layer.name not in sharded:
                    continue
                act = layer.activation_bytes * mb  # per-rank shard bytes
                if act not in ag_memo:
                    _, timing = comm.allgather(
                        [GpuBuffer.virtual(act) for _ in range(tp)]
                    )
                    ag_memo[act] = timing.time
                    _, timing = comm.reduce_scatter(
                        [GpuBuffer.virtual(act * tp) for _ in range(tp)]
                    )
                    rs_memo[act] = timing.time
                f += ag_memo[act]
                b += rs_memo[act]
            s = 0.0
            if stage.replicated_params:
                timing = comm.allreduce(
                    [
                        GpuBuffer.virtual(stage.replicated_params * 4)
                        for _ in range(tp)
                    ]
                )
                s = timing.time
            fwd.append(f)
            bwd.append(b)
            sync.append(s)
        return fwd, bwd, sync

    def _hop_time(
        self, stages: list[StageShard], layout: ParallelLayout, mb: int
    ) -> float:
        """Worst stage-boundary point-to-point transfer per pipeline slot.

        The full boundary activation (or its gradient, same bytes) crosses
        IB split across the tp pairs of adjacent stages.
        """
        if layout.pp == 1:
            return 0.0
        ib = self.study.config.cluster.ib
        return max(
            ib.transfer_time(s.boundary_activation_bytes * mb / layout.tp)
            for s in stages[:-1]
        )

    def _gradient_stream(
        self, stage: StageShard, backward_time: float, rng
    ) -> list[PendingTensor]:
        """The bottleneck stage's shard gradients with per-step jitter."""
        schedule = stage.cost.gradient_schedule()
        sigma = self.study.config.jitter_sigma
        if rng is None:
            noise = [0.0] * len(schedule)
        else:
            noise = rng.normal(0.0, sigma, len(schedule))
        return [
            PendingTensor(
                t.name,
                t.nbytes,
                ready_time=max(
                    0.0, t.ready_fraction * backward_time * (1.0 + eps)
                ),
            )
            for t, eps in zip(schedule, noise)
        ]

    # -- one point -----------------------------------------------------------
    def run(self, num_gpus: int, layout: ParallelLayout, *, hvprof=None):
        from repro.core.study import ScalingPoint

        study = self.study
        cfg = study.config
        scenario = study.scenario
        layout = layout.resolved(num_gpus)
        layout.validate_model(study.cost)
        layout.validate_cluster(cfg.cluster.node.gpus_per_node)
        batch = study.batch_for(num_gpus)
        layout.validate_batch(batch)
        gpn = cfg.cluster.node.gpus_per_node
        needed_nodes = (num_gpus + gpn - 1) // gpn
        if needed_nodes > cfg.cluster.max_nodes:
            raise HardwareError(
                f"{cfg.cluster.name} has {cfg.cluster.max_nodes} nodes, "
                f"requested {needed_nodes}; scale the spec with "
                f"with_nodes() for beyond-capacity studies"
            )
        if cfg.check_memory:
            check_hybrid_memory(study, layout, batch)
        # satellite fix: the detector survives across points of a sweep —
        # re-arm whenever the layout (pipeline depth above all) or world
        # changes so extrapolation never replays a stale step time
        self._steady.rearm_if_changed((num_gpus, batch, layout))

        P, M = layout.pp, layout.microbatches
        mb = batch * layout.model_parallel_size // M
        gpu = cfg.cluster.node.gpu
        stages = stage_models(study.cost, layout)
        tp_fwd, tp_bwd, tp_sync = self._tp_comm(stages, layout, mb)
        hop = self._hop_time(stages, layout, mb)
        strag = straggler_factor(num_gpus, sigma=cfg.jitter_sigma)
        stage_fwd = [
            ThroughputModel(s.cost, gpu).forward_time(mb) for s in stages
        ]
        stage_bwd = [
            ThroughputModel(s.cost, gpu).backward_time(mb) * strag
            for s in stages
        ]
        slots = M + P - 1
        slot_f = max(f + c for f, c in zip(stage_fwd, tp_fwd))
        slot_b = max(b + c for b, c in zip(stage_bwd, tp_bwd))
        fwd_wall = slots * (slot_f + hop)
        bwd_wall = slots * (slot_b + hop)
        sync_step = max(tp_sync)
        update = (
            max(s.cost.total_params for s in stages)
            * OPTIMIZER_BYTES_PER_PARAM
            / gpu.hbm_bandwidth
        )

        # the dp engine syncs the bottleneck stage's shard gradients
        grad_stage = stages[0]
        for stage in stages[1:]:
            if stage.cost.param_bytes > grad_stage.cost.param_bytes:
                grad_stage = stage

        engine = None
        transport = None
        world = None
        if layout.dp > 1:
            spec = dp_cluster_spec(cfg.cluster, layout)
            cluster = build_cluster(spec, layout.dp)
            world_spec = WorldSpec(
                num_ranks=layout.dp,
                policy=scenario.policy,
                config=scenario.mv2,
            )
            world, comm = build_backend(
                cluster,
                scenario.backend,
                world_spec=world_spec,
                num_ranks=layout.dp,
            )
            if cfg.engine_mode == "fast":
                from repro.sim.fastpath import enable_fastpath

                enable_fastpath(world)
            if hvprof is not None:
                comm.add_observer(hvprof.observer)
            engine = HorovodEngine(
                comm, cfg.horovod,
                compression=CompressionConfig.parse(cfg.compression),
            )
            transport = getattr(world, "transport", None)
        rng = SeedSequenceFactory(2021).generator("gradient-jitter", num_gpus)

        detector = None
        if (
            cfg.steady_detect
            and hvprof is None
            and cfg.measure_steps > cfg.steady_window
        ):
            detector = self._steady
        timing: StepTiming | None = None
        step_times: list[float] = []
        blocking = 0.0
        for step_index in range(cfg.warmup_steps + cfg.measure_steps):
            if engine is not None:
                stream = self._gradient_stream(grad_stage, bwd_wall, rng)
                staged_before = (
                    transport.max_staged_seconds() if transport else 0.0
                )
                timing = engine.run_step(stream, backward_time=bwd_wall)
                staged_delta = (
                    transport.max_staged_seconds() - staged_before
                    if transport else 0.0
                )
                blocking = staged_delta * PAGEABLE_BLOCKING_FACTOR
                comm_finish = timing.comm_finish
            else:
                comm_finish = 0.0
            step = (
                fwd_wall
                + max(bwd_wall, comm_finish)
                + blocking
                + sync_step
                + update
            )
            if step_index >= cfg.warmup_steps:
                step_times.append(step)
                if (
                    detector is not None
                    and len(step_times) < cfg.measure_steps
                ):
                    detector.observe(step)
                    if detector.converged():
                        break
        simulated_steps = len(step_times)
        extrapolated_steps = cfg.measure_steps - simulated_steps
        if extrapolated_steps:
            step_times.extend(
                [detector.steady_value()] * extrapolated_steps
            )
        mean_step = sum(step_times) / len(step_times)
        regcache = None
        if engine is not None and scenario.backend == "mpi":
            stats = world.regcache_stats()
            regcache = (
                stats["hit_rate"] if stats["hits"] + stats["misses"] else None
            )
        tp_time = M * max(f + b for f, b in zip(tp_fwd, tp_bwd)) + sync_step
        pp_time = slots * 2.0 * hop
        dp_comm = timing.total_comm_time if timing is not None else 0.0
        return ScalingPoint(
            scenario=scenario.name,
            num_gpus=num_gpus,
            images_per_second=num_gpus * batch / mean_step,
            step_time=mean_step,
            forward_time=fwd_wall,
            backward_time=bwd_wall,
            exposed_comm_time=(
                timing.exposed_comm_time if timing is not None else 0.0
            ),
            coordination_time=(
                timing.coordination_time if timing is not None else 0.0
            ),
            update_time=update,
            blocking_time=blocking,
            comm_wall_time=dp_comm + tp_time + pp_time,
            message_sizes=(
                [m.nbytes for m in timing.messages]
                if timing is not None else []
            ),
            regcache_hit_rate=regcache,
            simulated_steps=simulated_steps,
            extrapolated_steps=extrapolated_steps,
            parallelism={
                "dp": layout.dp,
                "tp": layout.tp,
                "pp": layout.pp,
                "microbatches": M,
                "schedule": layout.schedule,
                "microbatch_size": mb,
                "bubble_fraction": (P - 1) / slots,
                "tp_comm_time": tp_time,
                "pp_hop_time": pp_time,
                "stage_bounds": [
                    [s, e]
                    for s, e in _stage_bounds_of(study.cost, layout)
                ],
                "stage_params": [s.cost.total_params for s in stages],
                "grad_stage": grad_stage.index,
            },
        )


def _stage_bounds_of(
    cost: ModelCostModel, layout: ParallelLayout
) -> list[tuple[int, int]]:
    from repro.parallel.partition import split_stage_bounds

    return split_stage_bounds(cost.layers, layout.pp)
