"""Setuptools shim so `python setup.py develop` works in offline
environments lacking the `wheel` package (PEP 660 editable installs need
it). `pip install -e .` uses pyproject.toml when wheel is available."""

from setuptools import setup

setup()
